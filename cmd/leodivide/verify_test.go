package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoCorpus is the committed golden corpus relative to this package;
// repoRegionCorpus the committed per-region findings corpus.
const (
	repoCorpus       = "../../testdata/golden"
	repoRegionCorpus = "../../testdata/golden-regions"
)

func TestVerifyPassesOnCommittedCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus replay is not a -short test")
	}
	var buf bytes.Buffer
	if err := run([]string{"verify", "-corpus", repoCorpus, "-region-corpus", repoRegionCorpus}, &buf); err != nil {
		t.Fatalf("verify on committed corpus: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "verify: OK") {
		t.Errorf("output missing OK line:\n%s", out)
	}
	if !strings.Contains(out, "experiment replays match") {
		t.Errorf("output missing replay count:\n%s", out)
	}
	for _, want := range []string{"region brazil-rural", "region taipei-dense"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q replay line:\n%s", want, out)
		}
	}
}

// copyCorpusConfig copies one committed corpus config into a fresh root
// so a test can mutate it without touching the repository corpus.
func copyCorpusConfig(t *testing.T, seed, scale string) string {
	t.Helper()
	src := filepath.Join(repoCorpus, seed, scale)
	dst := filepath.Join(t.TempDir(), "golden")
	dir := filepath.Join(dst, seed, scale)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatalf("read committed corpus: %v", err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func TestVerifyFailsOnDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus replay is not a -short test")
	}
	corpus := copyCorpusConfig(t, "1", "0.02")

	// Mutate one frozen anchor: fig1's max cell size.
	fig1 := filepath.Join(corpus, "1", "0.02", "fig1.json")
	b, err := os.ReadFile(fig1)
	if err != nil {
		t.Fatal(err)
	}
	mutated := strings.Replace(string(b), `"MaxCell": `, `"MaxCell": 9`, 1)
	if mutated == string(b) {
		t.Fatalf("fig1.json has no MaxCell field to mutate:\n%s", b)
	}
	if err := os.WriteFile(fig1, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	err = run([]string{"verify", "-corpus", corpus, "-region-corpus", ""}, &buf)
	if err == nil {
		t.Fatalf("verify must fail on a mutated corpus; output:\n%s", buf.String())
	}
	if !strings.Contains(err.Error(), "drifted") {
		t.Errorf("error %q does not mention drift", err)
	}
	out := buf.String()
	// The drift report names the experiment, the config and the field path.
	for _, want := range []string{"fig1", "seed=1", "scale=0.02", "/MaxCell"} {
		if !strings.Contains(out, want) {
			t.Errorf("drift report missing %q:\n%s", want, out)
		}
	}
}

func TestVerifyFailsOnIncompleteCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus replay is not a -short test")
	}
	corpus := copyCorpusConfig(t, "1", "0.02")
	if err := os.Remove(filepath.Join(corpus, "1", "0.02", "table2.json")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := run([]string{"verify", "-corpus", corpus, "-region-corpus", ""}, &buf)
	if err == nil || !strings.Contains(err.Error(), "table2") {
		t.Errorf("missing-experiment corpus must fail naming table2, got %v", err)
	}
}

// TestVerifyFailsOnRegionDrift mutates one frozen per-region finding
// and expects the replay to fail naming the region.
func TestVerifyFailsOnRegionDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus replay is not a -short test")
	}
	mainCorpus := copyCorpusConfig(t, "1", "0.02")

	regionCorpus := filepath.Join(t.TempDir(), "golden-regions")
	// The trimmed main corpus holds one config, so trim the region
	// corpus to the same (seed, scale) per region.
	for _, key := range []string{"brazil-rural", "taipei-dense"} {
		dir := filepath.Join(regionCorpus, key, "1", "0.02")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(repoRegionCorpus, key, "1", "0.02", "findings.json"))
		if err != nil {
			t.Fatal(err)
		}
		if key == "brazil-rural" {
			mutated := strings.Replace(string(b), `"TotalLocations": `, `"TotalLocations": 9`, 1)
			if mutated == string(b) {
				t.Fatalf("findings.json has no TotalLocations field to mutate:\n%s", b)
			}
			b = []byte(mutated)
		}
		if err := os.WriteFile(filepath.Join(dir, "findings.json"), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	err := run([]string{"verify", "-corpus", mainCorpus, "-region-corpus", regionCorpus}, &buf)
	if err == nil {
		t.Fatalf("verify must fail on a mutated region corpus; output:\n%s", buf.String())
	}
	if !strings.Contains(err.Error(), "drifted") {
		t.Errorf("error %q does not mention drift", err)
	}
	if !strings.Contains(buf.String(), "findings[brazil-rural]") {
		t.Errorf("drift report does not name the drifted region:\n%s", buf.String())
	}
}

func TestVerifyFailsOnEmptyCorpus(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"verify", "-corpus", t.TempDir()}, &buf)
	if err == nil || !strings.Contains(err.Error(), "empty") {
		t.Errorf("empty corpus must fail, got %v", err)
	}
}

func TestVerifyBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"verify", "-no-such-flag"}, &buf); err == nil {
		t.Error("unknown verify flag must error")
	}
}
