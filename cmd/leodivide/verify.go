package main

// `leodivide verify` replays the committed golden corpus against the
// current binary and exits nonzero on drift. It is the CLI face of
// TestGoldenCorpus: CI runs it next to the bench job, and a developer
// can run it locally before sending a refactor to confirm no
// experiment's numbers moved.
//
//	leodivide verify                      # replay testdata/golden + testdata/golden-regions
//	leodivide -parallelism 1 verify       # replay on the serial path
//	leodivide verify -corpus other/dir    # replay an alternate corpus
//	leodivide verify -region-corpus ""    # skip the per-region findings replay
//
// The replay intentionally ignores the global -seed/-scale/-calibrated
// flags: each corpus directory names the seed and scale it was frozen
// at, and the corpus is generated under the default (uncalibrated)
// model, so honoring those flags would compare apples to oranges.
// -parallelism is honored — drift that appears only at some worker
// count is exactly the kind of bug the gate exists to catch.

import (
	"context"
	"flag"
	"fmt"
	"io"
	"path/filepath"

	"leodivide"
	"leodivide/internal/golden"
	"leodivide/internal/region"
)

func runVerify(ctx context.Context, w io.Writer, global leodivide.RunConfig, args []string) error {
	fs := flag.NewFlagSet("leodivide verify", flag.ContinueOnError)
	corpus := fs.String("corpus", "testdata/golden", "golden corpus root directory")
	regionCorpus := fs.String("region-corpus", "testdata/golden-regions",
		"per-region findings corpus root (empty to skip)")
	maxDiffs := fs.Int("max-diffs", 10, "maximum field diffs to print per experiment")
	if err := fs.Parse(args); err != nil {
		return err
	}

	configs, err := golden.Configs(*corpus)
	if err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	if len(configs) == 0 {
		return fmt.Errorf("verify: corpus %s is empty (regenerate with `go test -run TestGoldenCorpus -update ./...`)", *corpus)
	}

	registry := leodivide.NewModel().Experiments()
	var drifted, replayed int
	for _, cc := range configs {
		// Replay under the exact conditions the corpus was frozen at:
		// the default run configuration, with only the seed and scale
		// taken from the corpus directory and the parallelism knob
		// inherited from the global flags.
		rc := leodivide.DefaultRunConfig()
		rc.Seed = cc.Seed
		rc.Scale = cc.Scale
		rc.Parallelism = global.Parallelism

		names, err := golden.Experiments(cc.Dir)
		if err != nil {
			return fmt.Errorf("verify: %w", err)
		}
		frozen := make(map[string]bool, len(names))
		for _, n := range names {
			frozen[n] = true
		}
		// Completeness gate: the corpus must cover the whole registry
		// and carry nothing the registry no longer knows.
		for _, exp := range registry {
			if !frozen[exp.Name] {
				return fmt.Errorf("verify: corpus %s missing experiment %q (regenerate with -update)", cc.Dir, exp.Name)
			}
			delete(frozen, exp.Name)
		}
		for n := range frozen {
			return fmt.Errorf("verify: corpus %s has file for unknown experiment %q (delete it)", cc.Dir, n)
		}

		ds, err := rc.Generate(ctx)
		if err != nil {
			return fmt.Errorf("verify: generate %s: %w", rc, err)
		}
		m := rc.BuildModel()
		for _, exp := range registry {
			e, ok := m.ExperimentByName(exp.Name)
			if !ok {
				return fmt.Errorf("verify: experiment %q vanished from the model", exp.Name)
			}
			v, err := e.Run(ctx, ds)
			if err != nil {
				return fmt.Errorf("verify: run %s (%s): %w", exp.Name, rc, err)
			}
			got, err := golden.Encode(v)
			if err != nil {
				return fmt.Errorf("verify: encode %s: %w", exp.Name, err)
			}
			want, err := golden.ReadFile(golden.File(*corpus, cc.Seed, cc.Scale, exp.Name))
			if err != nil {
				return fmt.Errorf("verify: %w", err)
			}
			diffs, err := golden.Compare(got, want, golden.Default())
			if err != nil {
				return fmt.Errorf("verify: compare %s: %w", exp.Name, err)
			}
			replayed++
			if len(diffs) > 0 {
				drifted++
				golden.WriteDiffs(w, exp.Name, cc, diffs, *maxDiffs)
			}
		}
		// The canonical RunConfig rendering (RunConfig.String), so the
		// replay log names the run the same way cache keys do.
		fmt.Fprintf(w, "verify: %s: %d experiments replayed\n", rc, len(registry))
	}
	if *regionCorpus != "" {
		rd, rr, err := verifyRegions(ctx, w, global, *regionCorpus, *maxDiffs)
		if err != nil {
			return err
		}
		drifted += rd
		replayed += rr
	}

	if drifted > 0 {
		return fmt.Errorf("verify: %d of %d experiment replays drifted from the golden corpus", drifted, replayed)
	}
	fmt.Fprintf(w, "verify: OK — %d experiment replays match the golden corpus\n", replayed)
	return nil
}

// verifyRegions replays the per-region findings corpus: every declared
// non-default region must have a frozen findings.json at every (seed,
// scale) the corpus commits, regenerated on that geography and compared
// under the same tolerance as the main corpus.
func verifyRegions(ctx context.Context, w io.Writer, global leodivide.RunConfig, root string, maxDiffs int) (drifted, replayed int, err error) {
	for _, key := range region.Names() {
		if key == region.DefaultKey {
			// The main corpus already freezes every experiment on the
			// default geography.
			continue
		}
		dir := filepath.Join(root, key)
		configs, err := golden.Configs(dir)
		if err != nil {
			return 0, 0, fmt.Errorf("verify: region corpus %s: %w", dir, err)
		}
		if len(configs) == 0 {
			return 0, 0, fmt.Errorf("verify: region corpus %s is empty (regenerate with `go test -run TestGoldenRegionCorpus -update ./...`)", dir)
		}
		for _, cc := range configs {
			ds, err := leodivide.GenerateDataset(ctx,
				leodivide.WithSeed(cc.Seed),
				leodivide.WithScale(cc.Scale),
				leodivide.WithRegion(key),
				leodivide.WithParallelism(global.Parallelism),
			)
			if err != nil {
				return 0, 0, fmt.Errorf("verify: generate region %s (seed %d, scale %g): %w", key, cc.Seed, cc.Scale, err)
			}
			m := leodivide.NewModel()
			if global.Parallelism > 0 {
				m = m.Parallelism(global.Parallelism)
			}
			e, ok := m.ExperimentByName("findings")
			if !ok {
				return 0, 0, fmt.Errorf("verify: findings experiment vanished from the model")
			}
			v, err := e.Run(ctx, ds)
			if err != nil {
				return 0, 0, fmt.Errorf("verify: run findings on %s: %w", key, err)
			}
			got, err := golden.Encode(v)
			if err != nil {
				return 0, 0, fmt.Errorf("verify: encode findings on %s: %w", key, err)
			}
			want, err := golden.ReadFile(golden.File(dir, cc.Seed, cc.Scale, "findings"))
			if err != nil {
				return 0, 0, fmt.Errorf("verify: %w", err)
			}
			diffs, err := golden.Compare(got, want, golden.Default())
			if err != nil {
				return 0, 0, fmt.Errorf("verify: compare findings on %s: %w", key, err)
			}
			replayed++
			if len(diffs) > 0 {
				drifted++
				golden.WriteDiffs(w, "findings["+key+"]", cc, diffs, maxDiffs)
			}
		}
		fmt.Fprintf(w, "verify: region %s: %d findings replays\n", key, len(configs))
	}
	return drifted, replayed, nil
}
