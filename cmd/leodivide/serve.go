package main

// `leodivide serve` runs the scenario-query API (internal/serve): one
// shared dataset generated at startup, then HTTP/JSON what-if queries
// memoized by canonical scenario key. SIGINT/SIGTERM drain in-flight
// requests before exit, so a supervisor restart never truncates a
// response mid-body.

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"leodivide"
	"leodivide/internal/serve"
)

// flagCacheBytes maps the CLI convention (<= 0 = unbounded) onto the
// serve.Config one (negative = unbounded, 0 = default): the flag's
// default already names the serve default explicitly, so a zero here is
// the operator asking for no byte bound, not for the default.
func flagCacheBytes(v int64) int64 {
	if v <= 0 {
		return -1
	}
	return v
}

func runServe(ctx context.Context, w io.Writer, sc leodivide.ScenarioConfig, args []string) error {
	fs := flag.NewFlagSet("leodivide serve", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8080", "listen address (host:port; :0 picks a free port)")
	cacheEntries := fs.Int("cache-entries", 1024, "bound on memoized scenario results")
	cacheBytes := fs.Int64("cache-bytes", serve.DefaultCacheBytes, "bound on memoized result bytes (<= 0 = unbounded)")
	maxInflight := fs.Int("max-inflight", 0, "bound on concurrently running experiments (0 = one per CPU)")
	drain := fs.Duration("drain", 10*time.Second, "grace period for in-flight requests on shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// SIGINT/SIGTERM cancel the context; Run turns that into a graceful
	// drain. A second signal kills the process the ordinary way.
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	s, err := serve.New(ctx, serve.Config{
		Scenario:     sc,
		CacheEntries: *cacheEntries,
		CacheBytes:   flagCacheBytes(*cacheBytes),
		MaxInflight:  *maxInflight,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	fmt.Fprintf(w, "serve: dataset ready (%s); listening on http://%s\n", sc.RunConfig, ln.Addr())
	if err := s.Run(ctx, ln, *drain); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	fmt.Fprintln(w, "serve: drained and stopped")
	return nil
}
