// Command leodivide regenerates every table and figure of the paper
// from the calibrated synthetic dataset, and exports datasets in the
// BDC-style CSV formats.
//
// Usage:
//
//	leodivide [flags] <command>
//
// Commands:
//
//	experiments list every registered experiment
//	fig1      per-cell density distribution (Figure 1)
//	table1    single-satellite capacity model (Table 1)
//	table2    constellation sizing (Table 2)
//	fig2      beamspread × oversubscription served fraction (Figure 2)
//	fig3      diminishing returns (Figure 3)
//	fig4      affordability (Figure 4)
//	findings   the paper's four findings (F1–F4)
//	simcheck   time-stepped simulator cross-check of the analytic model
//	ablate     parameter and undercount sensitivity ablations
//	fleets     assess the authorized Gen1/Gen2 fleets against the requirement
//	linkbudget derive the 4.5 b/Hz spectral-efficiency estimate physically
//	refined    affordability with income dispersion and Lifeline eligibility
//	costcurve  cost per served location vs fleet size, per constellation
//	xconst     which constellation closes the divide cheapest (100/20)
//	xregion    service fraction vs affordability per demand geography
//	gen        write the dataset as CSV (cells, and optionally locations)
//	bench      emit a schema-versioned BENCH_*.json performance report
//	verify     replay the committed golden corpus; exit nonzero on drift
//	serve      answer scenario queries over HTTP/JSON with a memoized cache
//	loadgen    drive a running serve instance and report latency + hit rate
//	all        run every experiment in order
//
// The -scenario flag accepts the exact JSON body of POST /v1/scenario
// (the leodivide.ScenarioRequest wire contract), so a query saved from
// the HTTP API replays byte-for-byte through the CLI; the individual
// flags remain as shorthands the scenario's fields override.
//
// Observability flags: -metrics prints the obs metric snapshot to
// stderr after the command (stdout stays byte-identical for result
// comparison); -trace prints the span tree; -debug-addr serves pprof,
// expvar and /metrics over HTTP for live inspection.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"leodivide"
	"leodivide/internal/afford"
	"leodivide/internal/bdc"
	"leodivide/internal/beams"
	"leodivide/internal/core"
	"leodivide/internal/demand"
	"leodivide/internal/geo"
	"leodivide/internal/linkbudget"
	"leodivide/internal/obs"
	"leodivide/internal/orbit"
	"leodivide/internal/regions"
	"leodivide/internal/report"
	"leodivide/internal/safeio"
	"leodivide/internal/sim"
	"leodivide/internal/traffic"
	"leodivide/internal/usgeo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "leodivide:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	// All three surfaces (library, CLI, bench) build their pipeline from
	// the same leodivide.RunConfig; the flags bind directly to it.
	cfg := leodivide.DefaultRunConfig()
	fs := flag.NewFlagSet("leodivide", flag.ContinueOnError)
	fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "dataset generation seed")
	fs.Float64Var(&cfg.Scale, "scale", cfg.Scale, "dataset scale in (0,1]")
	fs.BoolVar(&cfg.Calibrated, "calibrated", cfg.Calibrated, "pin effective cells to the paper's fitted value")
	fs.IntVar(&cfg.Parallelism, "parallelism", cfg.Parallelism, "worker bound for generation and experiments (0 = all CPUs, 1 = serial)")
	regionKey := fs.String("region", "", "demand/income geography (us, brazil-rural, taipei-dense; default us)")
	scenarioJSON := fs.String("scenario", "", "scenario request JSON (the exact POST /v1/scenario body); overrides the shorthand flags")
	metrics := fs.Bool("metrics", false, "print the metric snapshot to stderr after the command")
	trace := fs.Bool("trace", false, "record spans and print the trace tree to stderr after the command")
	debugAddr := fs.String("debug-addr", "", "serve pprof, expvar and /metrics on this address (e.g. localhost:6060)")
	locCSV := fs.String("locations-csv", "", "gen: also write per-location CSV to this path (scaled)")
	locScale := fs.Float64("locations-scale", 0.01, "gen: per-location expansion scale")
	exportDir := fs.String("dir", "export", "export: output directory for GeoJSON/CSV files")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	// The scenario is the one description of the run every command
	// shares: the flags form the base, and -scenario (the HTTP wire
	// contract) merges on top — pointer fields (seed, scale, calibrated)
	// override the shorthand flags when present.
	sc := leodivide.ScenarioConfig{RunConfig: cfg, Region: *regionKey}
	if *scenarioJSON != "" {
		req, err := leodivide.ParseScenarioRequest([]byte(*scenarioJSON))
		if err != nil {
			return err
		}
		if sc, err = req.Apply(sc); err != nil {
			return err
		}
	}
	var cmd string
	switch {
	case fs.NArg() >= 1:
		cmd = fs.Arg(0)
	case sc.Experiment != "":
		// `-scenario '{"experiment":"xconst",...}'` with no command arg
		// runs the scenario's experiment, like the HTTP API would.
		cmd = sc.Experiment
	default:
		fs.Usage()
		return fmt.Errorf("missing command")
	}
	ctx := context.Background()

	if *debugAddr != "" {
		bound, err := startDebugServer(*debugAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s (pprof, expvar, /metrics)\n", bound)
	}
	if *trace {
		rec := &obs.RecordingCollector{}
		defer obs.SetCollector(rec)()
		defer func() {
			fmt.Fprintln(os.Stderr, "--- trace ---")
			//lint:ignore errdrop best-effort trace dump to stderr during shutdown
			rec.WriteText(os.Stderr)
		}()
	}
	if *metrics {
		// Stderr, so stdout stays byte-identical across parallelism
		// settings (the determinism contract).
		defer func() {
			fmt.Fprintln(os.Stderr, "--- metrics ---")
			//lint:ignore errdrop best-effort metrics dump to stderr during shutdown
			obs.Default.Snapshot().WriteText(os.Stderr)
		}()
	}

	m := sc.BuildModel()
	if sc.Experiment != "" && cmd != sc.Experiment {
		if _, ok := m.ExperimentByName(cmd); ok {
			return fmt.Errorf("command %q conflicts with -scenario experiment %q", cmd, sc.Experiment)
		}
	}
	switch cmd {
	case "experiments":
		return runExperimentList(w, m)
	case "bench":
		return runBench(ctx, w, sc, fs.Args()[1:])
	case "verify":
		return runVerify(ctx, w, sc.RunConfig, fs.Args()[1:])
	case "serve":
		return runServe(ctx, w, sc, fs.Args()[1:])
	case "loadgen":
		return runLoadgen(ctx, w, fs.Args()[1:])
	}

	ds, err := sc.Generate(ctx)
	if err != nil {
		return err
	}

	switch cmd {
	case "stability":
		return runStability(ctx, w, m)
	case "export":
		return runExport(ctx, w, m, ds, *exportDir)
	case "gen":
		return runGen(ctx, w, ds, cfg.Seed, *locCSV, *locScale)
	case "all":
		for _, name := range allOrder {
			if err := runOne(ctx, w, m, ds, name); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	default:
		return runOne(ctx, w, m, ds, cmd)
	}
}

// allOrder is the presentation order of `leodivide all`.
var allOrder = []string{
	"fig1", "table1", "table2", "fig2", "fig3", "fig4", "findings",
	"simcheck", "ablate", "fleets", "refined", "linkbudget", "states",
	"latency", "busyhour", "econ", "costcurve", "xconst", "xregion",
}

// renderer turns one experiment's result (the registry's `any`) back
// into the report tables the CLI prints.
type renderer func(ctx context.Context, w io.Writer, m leodivide.Model, ds *leodivide.Dataset, v any) error

// resultAs recovers an experiment's concrete result type from the
// registry's any — the CLI-side counterpart of leodivide.RunAs.
func resultAs[T any](name string, v any) (T, error) {
	t, ok := v.(T)
	if !ok {
		var zero T
		return zero, fmt.Errorf("%s: unexpected result type %T, want %T", name, v, zero)
	}
	return t, nil
}

// renderers maps registry experiment names to their presentation. Every
// registry entry must have one — TestRegistryCoversRenderers enforces
// the pairing, which is what keeps CLI and library from drifting.
var renderers = map[string]renderer{
	"fig1":      renderFig1,
	"table1":    renderTable1,
	"table2":    renderTable2,
	"fig2":      renderFig2,
	"fig3":      renderFig3,
	"fig4":      renderFig4,
	"findings":  renderFindings,
	"fleets":    renderFleets,
	"refined":   renderRefined,
	"busyhour":  renderBusyHour,
	"econ":      renderEcon,
	"costcurve": renderCostCurve,
	"xconst":    renderXConst,
	"xregion":   renderXRegion,
}

// runOne dispatches one subcommand: registry experiments run through
// Model.Experiments and their renderer; the CLI-only analyses
// (simulator cross-check, ablations, link budget, state report,
// latency) keep dedicated paths.
func runOne(ctx context.Context, w io.Writer, m leodivide.Model, ds *leodivide.Dataset, name string) error {
	if exp, ok := m.ExperimentByName(name); ok {
		render, ok := renderers[name]
		if !ok {
			return fmt.Errorf("experiment %q has no renderer", name)
		}
		v, err := exp.Run(ctx, ds)
		if err != nil {
			return err
		}
		return render(ctx, w, m, ds, v)
	}
	switch name {
	case "simcheck":
		return runSimCheck(ctx, w, ds)
	case "ablate":
		return runAblate(w, m, ds)
	case "linkbudget":
		return runLinkBudget(w)
	case "states":
		return runStates(w, m, ds)
	case "latency":
		return runLatency(w)
	default:
		return fmt.Errorf("unknown command %q", name)
	}
}

func runExperimentList(w io.Writer, m leodivide.Model) error {
	t := report.NewTable("Registered experiments", "name", "description")
	for _, e := range m.Experiments() {
		t.AddRow(e.Name, e.Description)
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "CLI-only analyses: simcheck, ablate, linkbudget, states, latency, stability, export, gen, verify, serve, loadgen.")
	return nil
}

func renderFig1(ctx context.Context, w io.Writer, m leodivide.Model, ds *leodivide.Dataset, v any) error {
	r, err := resultAs[leodivide.Fig1Result]("fig1", v)
	if err != nil {
		return err
	}
	t := report.NewTable("Figure 1 — un(der)served locations per service cell",
		"statistic", "value", "paper")
	t.AddRow("total locations", r.TotalLocs, 4672000)
	t.AddRow("demand cells", r.TotalCells, "n/a")
	t.AddRow("max locations/cell", r.MaxCell, 5998)
	t.AddRow("99th percentile", r.P99, 1437)
	t.AddRow("90th percentile", r.P90, 552)
	t.AddRow("median", int(r.Summary.Median), "n/a")
	t.AddRow("Gini (demand concentration)", fmt.Sprintf("%.3f", r.Gini), "n/a")
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	xs := make([]float64, len(r.CDF))
	ys := make([]float64, len(r.CDF))
	for i, p := range r.CDF {
		xs[i], ys[i] = p.X, p.Y
	}
	return report.Series(w, "fig1-cdf locations/cell vs cumulative probability", xs, ys)
}

func renderTable1(ctx context.Context, w io.Writer, m leodivide.Model, ds *leodivide.Dataset, v any) error {
	c, err := resultAs[core.CapacityTable]("table1", v)
	if err != nil {
		return err
	}
	t := report.NewTable("Table 1 — Starlink single-satellite capacity model",
		"parameter", "value", "paper")
	t.AddRow("UT downlink spectrum (MHz)", c.UTDownlinkMHz, 3850)
	t.AddRow("spectral efficiency (b/Hz)", c.SpectralEfficiencyBpsPerHz, 4.5)
	t.AddRow("max per-cell capacity (Gbps)", c.MaxCellCapacityGbps, 17.3)
	t.AddRow("peak cell users", c.PeakCellLocations, 5998)
	t.AddRow("FCC throughput (DL/UL Mbps)", fmt.Sprintf("%.0f/%.0f", c.FCCDownMbps, c.FCCUpMbps), "100/20")
	t.AddRow("peak cell DL demand (Gbps)", c.PeakCellDemandGbps, 599.8)
	t.AddRow("max DL oversubscription", fmt.Sprintf("%.1f:1", c.MaxOversubscription), "~35:1")
	_, err = t.WriteTo(w)
	return err
}

func renderTable2(ctx context.Context, w io.Writer, m leodivide.Model, ds *leodivide.Dataset, v any) error {
	r, err := resultAs[leodivide.Table2Result]("table2", v)
	if err != nil {
		return err
	}
	t := report.NewTable("Table 2 — constellation size vs beamspread",
		"beamspread", "full service", "paper", "max 20:1", "paper ")
	for _, row := range r.Rows {
		t.AddRow(row.Spread, row.FullServiceSats, r.PaperFullService[row.Spread],
			row.CappedOversubSats, r.PaperCapped[row.Spread])
	}
	_, err = t.WriteTo(w)
	return err
}

func renderFig2(ctx context.Context, w io.Writer, m leodivide.Model, ds *leodivide.Dataset, v any) error {
	r, err := resultAs[leodivide.Fig2Result]("fig2", v)
	if err != nil {
		return err
	}
	return report.Heatmap(w,
		"Figure 2 — fraction of US demand cells served (rows: beamspread, cols: oversubscription)",
		r.Spreads, r.Oversubs, r.Fraction)
}

func renderFig3(ctx context.Context, w io.Writer, m leodivide.Model, ds *leodivide.Dataset, v any) error {
	results, err := resultAs[[]leodivide.Fig3Result]("fig3", v)
	if err != nil {
		return err
	}
	for _, res := range results {
		t := report.NewTable(
			fmt.Sprintf("Figure 3 — diminishing returns (beamspread %g, oversub %g:1, unservable floor %d)",
				res.Spread, res.Oversub, res.FloorUnserved),
			"unserved-from", "unserved-to", "locations gained", "additional satellites")
		for _, s := range res.Steps {
			t.AddRow(s.FromUnserved, s.ToUnserved, s.LocationsGained, s.AdditionalSatellites)
		}
		if _, err := t.WriteTo(w); err != nil {
			return err
		}
	}
	return nil
}

func renderFig4(ctx context.Context, w io.Writer, m leodivide.Model, ds *leodivide.Dataset, v any) error {
	r, err := resultAs[leodivide.Fig4Result]("fig4", v)
	if err != nil {
		return err
	}
	t := report.NewTable("Figure 4 / Finding 4 — affordability at 2% of income",
		"plan", "monthly", "income threshold", "unaffordable locations", "fraction")
	for _, res := range r.Results {
		t.AddRow(label(res), fmt.Sprintf("$%.2f", afford.EffectiveMonthlyUSD(res.Plan, res.Subsidy)),
			fmt.Sprintf("$%.0f", res.IncomeThresholdUSD),
			int(res.UnaffordableLocations),
			fmt.Sprintf("%.3f", res.UnaffordableFraction))
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "paper: 3.5M of 4.7M (74.5%%) cannot afford Starlink Residential; ~3.0M with Lifeline\n\n")

	// The wider catalog: a plan must both qualify (100/20, low latency)
	// and be affordable — the double bind.
	in, err := m.AffordabilityInput(ds)
	if err != nil {
		return err
	}
	ct := report.NewTable("Plan catalog — qualification x affordability",
		"plan", "technology", "monthly", "meets 100/20", "unaffordable")
	for _, res := range in.EvaluateCatalog(m.AffordShare) {
		ct.AddRow(res.Name, res.Technology, fmt.Sprintf("$%.0f", res.MonthlyUSD),
			res.Qualifies, fmt.Sprintf("%.1f%%", 100*res.Afford.UnaffordableFraction))
	}
	_, err = ct.WriteTo(w)
	return err
}

func label(r afford.Result) string {
	if r.Subsidy != nil {
		return r.Plan.Name + " w/ " + r.Subsidy.Name
	}
	return r.Plan.Name
}

func renderFindings(ctx context.Context, w io.Writer, m leodivide.Model, ds *leodivide.Dataset, v any) error {
	f, err := resultAs[leodivide.Findings]("findings", v)
	if err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "F1: full service needs %.1f:1 oversubscription; at %g:1, %d locations (%.2f%%) live in cells above the cap and %d locations (%.2f%% of total) cannot be served (served fraction %.4f; paper: 99.89%%).\n",
		f.F1.RequiredOversub, f.F1.MaxOversub, f.F1.LocationsInCellsAboveCap,
		100*float64(f.F1.LocationsInCellsAboveCap)/float64(f.F1.TotalLocations),
		f.F1.ExcessLocations, 100*float64(f.F1.ExcessLocations)/float64(f.F1.TotalLocations),
		f.F1.ServedFractionAtCap)
	fmt.Fprintf(&b, "F2: serving all US cells within acceptable oversubscription at beamspread 2 needs %d satellites vs the current ~%d deployed (paper: >40,000 vs ~8,000).\n",
		f.F2SatellitesAtSpread2, f.F2CurrentConstellation)
	fmt.Fprintf(&b, "F3: the final tranches of servable locations cost disproportionately many satellites:\n")
	for _, s := range f.F3 {
		fmt.Fprintf(&b, "    +%d satellites to serve %d more locations (unserved %d -> %d)\n",
			s.AdditionalSatellites, s.LocationsGained, s.FromUnserved, s.ToUnserved)
	}
	fmt.Fprintf(&b, "F4: %.0f of %d locations (%.1f%%) cannot afford Starlink Residential (paper: 3.5M of 4.7M, 74.5%%).\n",
		f.F4Unaffordable, ds.TotalLocations(), 100*f.F4UnaffordableFraction)
	_, err = io.WriteString(w, b.String())
	return err
}

func runSimCheck(ctx context.Context, w io.Writer, ds *leodivide.Dataset) error {
	cfg := sim.DefaultConfig()
	res, err := sim.Run(ctx, cfg, ds.Cells)
	if err != nil {
		return err
	}
	bent := cfg
	bent.RequireGatewayVisibility = true
	for _, gw := range usgeo.GatewaySites() {
		bent.Gateways = append(bent.Gateways, gw.Pos)
	}
	resBent, err := sim.Run(ctx, bent, ds.Cells)
	if err != nil {
		return err
	}
	t := report.NewTable("Simulator cross-check — Walker 53°/550 km shell over demand cells",
		"metric", "free routing", "bent-pipe (36 gateways)")
	t.AddRow("epochs", res.Epochs, resBent.Epochs)
	t.AddRow("mean visible satellites per cell",
		fmt.Sprintf("%.1f", res.MeanVisibleSats), fmt.Sprintf("%.1f", resBent.MeanVisibleSats))
	t.AddRow("mean covered fraction",
		fmt.Sprintf("%.4f", res.MeanCoveredFraction), fmt.Sprintf("%.4f", resBent.MeanCoveredFraction))
	t.AddRow("min covered fraction",
		fmt.Sprintf("%.4f", res.MinCoveredFraction), fmt.Sprintf("%.4f", resBent.MinCoveredFraction))
	t.AddRow("mean served fraction",
		fmt.Sprintf("%.4f", res.MeanServedFraction), fmt.Sprintf("%.4f", resBent.MeanServedFraction))
	t.AddRow("min served fraction",
		fmt.Sprintf("%.4f", res.MinServedFraction), fmt.Sprintf("%.4f", resBent.MinServedFraction))
	if _, err := t.WriteTo(w); err != nil {
		return err
	}

	// Dynamics over half an orbit: utilization and handover churn.
	series, err := sim.RunSeries(ctx, cfg, ds.Cells)
	if err != nil {
		return err
	}
	// Coverage by latitude: the inclined shell's Alaska cliff.
	bands, err := sim.CoverageByLatitude(ctx, cfg, ds.Cells, 10)
	if err != nil {
		return err
	}
	bt := report.NewTable("Coverage by latitude band (first epoch)",
		"band", "cells", "covered fraction")
	for _, b := range bands {
		bt.AddRow(fmt.Sprintf("%g-%gN", b.LatLoDeg, b.LatHiDeg), b.Cells,
			fmt.Sprintf("%.3f", b.CoveredFraction))
	}
	if _, err := bt.WriteTo(w); err != nil {
		return err
	}

	st := report.NewTable("Simulator time series (beam utilization and handovers)",
		"t (s)", "covered", "served", "beam utilization", "handovers")
	for _, e := range series {
		st.AddRow(int(e.TimeSec), fmt.Sprintf("%.3f", e.CoveredFraction),
			fmt.Sprintf("%.3f", e.ServedFraction),
			fmt.Sprintf("%.3f", e.BeamUtilization), e.Handovers)
	}
	_, err = st.WriteTo(w)
	return err
}

func runAblate(w io.Writer, m leodivide.Model, ds *leodivide.Dataset) error {
	dist := ds.Distribution()
	t := report.NewTable("Ablation — full-service constellation at beamspread 2 under parameter changes",
		"variant", "satellites", "delta vs base")
	base := m.Capacity.Size(dist, core.FullService, 2, 0).Satellites
	add := func(name string, mm leodivide.Model) {
		n := mm.Capacity.Size(dist, core.FullService, 2, 0).Satellites
		t.AddRow(name, n, fmt.Sprintf("%+.1f%%", 100*(float64(n)/float64(base)-1)))
	}
	t.AddRow("baseline", base, "+0.0%")

	mEff := m
	mEff.Capacity.Beams.BeamCapacityGbps *= 5.5 / 4.5 // spectral efficiency 5.5 b/Hz
	add("spectral efficiency 5.5 b/Hz", mEff)

	mBeams := m
	mBeams.Capacity.Beams.BeamsPerSatellite = 32
	add("32 UT beams per satellite", mBeams)

	mInc := m
	mInc.Capacity.InclinationDeg = 70
	add("70 deg inclination shell", mInc)

	mCellBig := m
	mCellBig.Capacity.CellAreaKm2 *= 7 // one resolution coarser
	add("7x larger service cells", mCellBig)

	mAll := m
	mAll.Capacity.Binding = core.BindAllCells
	add("all-cells binding (tighter bound)", mAll)

	mGW := m
	mGW.Capacity.Beams.BeamsPerSatellite =
		m.Capacity.Beams.EffectiveUTBeams(beams.DefaultGatewayConfig())
	add(fmt.Sprintf("bent-pipe backhaul budget (%d UT beams)",
		mGW.Capacity.Beams.BeamsPerSatellite), mGW)

	if _, err := t.WriteTo(w); err != nil {
		return err
	}

	// Undercount sensitivity: the FCC map is built from ISP
	// self-reports known to overstate coverage; rescale demand upward
	// and watch the findings move.
	ut := report.NewTable("Ablation — sensitivity to National Broadband Map undercounting",
		"true demand vs map", "peak oversubscription", "unservable at 20:1", "satellites (beamspread 2, 20:1)")
	for _, factor := range []float64{1.0, 1.1, 1.25, 1.5} {
		scaled, err := demand.Scale(ds.Cells, factor)
		if err != nil {
			return err
		}
		sdist, err := demand.NewDistribution(scaled)
		if err != nil {
			return err
		}
		o := m.Capacity.Oversubscription(sdist, m.MaxOversub)
		size := m.Capacity.Size(sdist, core.CappedOversub, 2, m.MaxOversub)
		ut.AddRow(fmt.Sprintf("%+.0f%%", 100*(factor-1)),
			fmt.Sprintf("%.1f:1", o.RequiredOversub),
			o.ExcessLocations, size.Satellites)
	}
	_, err := ut.WriteTo(w)
	return err
}

func renderFleets(ctx context.Context, w io.Writer, m leodivide.Model, ds *leodivide.Dataset, v any) error {
	r, err := resultAs[leodivide.FleetsResult]("fleets", v)
	if err != nil {
		return err
	}
	print := func(a core.FleetAssessment) {
		t := report.NewTable(
			fmt.Sprintf("%s — %d satellites (≈%d single-shell-equivalent at %.1f°N)",
				a.FleetName, a.TotalSatellites, a.EquivalentSatellites, a.BindingLatDeg),
			"beamspread", "required satellites", "coverage ratio")
		for _, row := range a.Rows {
			t.AddRow(row.Spread, row.RequiredSatellites, fmt.Sprintf("%.2f", row.CoverageRatio))
		}
		//lint:ignore errdrop human-facing table print to the CLI writer, same contract as the exempt fmt.Fprintf calls around it
		t.WriteTo(w)
	}
	print(r.Gen1)
	print(r.Gen2)
	// The inverse question: what must today's fleet give up?
	inv := m.Capacity.InverseSize(ds.Distribution(), leodivide.CurrentStarlinkSatellites, m.MaxOversub)
	fmt.Fprintf(w, "today's ~%d satellites force beamspread ≈%.1f: %.2f Gbps per single-beam cell, only %.1f%% of demand cells servable within %g:1.\n",
		inv.Satellites, inv.RequiredSpread, inv.PerCellCapacityGbps,
		100*inv.ServedCellFraction, m.MaxOversub)
	return nil
}

func renderRefined(ctx context.Context, w io.Writer, m leodivide.Model, ds *leodivide.Dataset, v any) error {
	r, err := resultAs[leodivide.RefinedFig4Result]("refined", v)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Refined affordability — within-county lognormal dispersion (σ=%.2f, household of %d)",
			r.SigmaLog, r.HouseholdSize),
		"model", "unaffordable locations", "fraction")
	t.AddRow("median-only (paper assumption)", int(r.MedianOnly.UnaffordableLocations),
		fmt.Sprintf("%.3f", r.MedianOnly.UnaffordableFraction))
	t.AddRow("dispersed incomes", int(r.Dispersed.UnaffordableLocations),
		fmt.Sprintf("%.3f", r.Dispersed.UnaffordableFraction))
	t.AddRow("dispersed + Lifeline eligibility", int(r.LifelineAware.UnaffordableLocations),
		fmt.Sprintf("%.3f", r.LifelineAware.UnaffordableFraction))
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "Lifeline-eligible households: %.1f%%; rescued by the subsidy: %.2f%% — the $9.25 subsidy's income ceiling ($%.0f threshold vs ~$42k cutoff) makes it unusable for Starlink's price point.\n",
		100*r.LifelineAware.EligibleFraction, 100*r.LifelineAware.SubsidyUsableFraction,
		r.LifelineAware.IncomeThresholdUSD)
	return nil
}

func runLinkBudget(w io.Writer) error {
	b := linkbudget.StarlinkKuDownlink()
	t := report.NewTable("Link budget — Starlink Ku downlink at 40° elevation",
		"item", "value", "unit")
	for _, line := range b.Breakdown(40) {
		t.AddRow(line.Item, fmt.Sprintf("%.2f", line.Value), line.Unit)
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	eff, err := b.MeanEfficiency(25)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "elevation-weighted mean spectral efficiency over the 25° cone: %.2f b/Hz (paper adopts ~4.5)\n", eff)
	et := report.NewTable("Spectral efficiency vs elevation", "elevation (deg)", "C/N (dB)", "efficiency (b/Hz)")
	for _, el := range []float64{25, 30, 40, 50, 60, 75, 90} {
		et.AddRow(el, fmt.Sprintf("%.1f", b.CNdB(el)), fmt.Sprintf("%.2f", b.EfficiencyAt(el)))
	}
	_, err = et.WriteTo(w)
	return err
}

func runGen(ctx context.Context, w io.Writer, ds *leodivide.Dataset, seed int64, locCSV string, locScale float64) error {
	if err := bdc.WriteCellsCSV(w, ds.Cells); err != nil {
		return err
	}
	if locCSV != "" {
		cfg := bdc.DefaultGenConfig()
		cfg.Seed = seed
		locs, err := bdc.GenerateLocations(cfg, ds.Cells, locScale)
		if err != nil {
			return err
		}
		if _, err := safeio.WriteFile(ctx, locCSV, func(f io.Writer) error {
			return bdc.WriteLocationsCSV(f, locs)
		}); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d locations to %s\n", len(locs), locCSV)
	}
	return nil
}

func runStates(w io.Writer, m leodivide.Model, ds *leodivide.Dataset) error {
	cfg := regions.DefaultConfig()
	cfg.Beams = m.Capacity.Beams
	cfg.MaxOversub = m.MaxOversub
	cfg.Share = m.AffordShare
	profiles, err := regions.ByState(cfg, ds.Cells, ds.Incomes)
	if err != nil {
		return err
	}
	t := report.NewTable("State report card — top 15 by un(der)served locations",
		"state", "locations", "cells", "peak cell", "oversub needed", "unservable@20:1", "can't afford Starlink")
	for i, p := range profiles {
		if i >= 15 {
			break
		}
		t.AddRow(p.Abbr, p.Locations, p.Cells, p.PeakCellLocations,
			fmt.Sprintf("%.1f:1", p.RequiredOversub), p.UnservableAt20,
			fmt.Sprintf("%.1f%%", 100*p.UnaffordableFraction))
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	st := report.NewTable("Most capacity-stressed states (densest cells)",
		"state", "peak cell", "oversub needed")
	for _, p := range regions.TopStressed(profiles, 5) {
		st.AddRow(p.Abbr, p.PeakCellLocations, fmt.Sprintf("%.1f:1", p.RequiredOversub))
	}
	_, err = st.WriteTo(w)
	return err
}

func runLatency(w io.Writer) error {
	t := report.NewTable("Latency geometry — why LEO, in the paper's framing",
		"path", "RTT (ms)")
	t.AddRow("LEO 550 km bent-pipe floor", fmt.Sprintf("%.2f", orbit.MinBentPipeRTTMs(550)))
	t.AddRow("LEO 1,200 km bent-pipe floor", fmt.Sprintf("%.2f", orbit.MinBentPipeRTTMs(1200)))
	t.AddRow("GEO 35,786 km bent-pipe floor", fmt.Sprintf("%.2f", orbit.GEOBentPipeRTTMs()))
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	// A realistic profile: a New Mexico terminal under a quarter shell
	// with the national gateway network.
	shell := orbit.Walker{AltitudeKm: 550, InclinationDeg: 53, Total: 396, Planes: 18, Phasing: 1}
	var gws []geo.LatLng
	for _, g := range usgeo.GatewaySites() {
		gws = append(gws, g.Pos)
	}
	p, err := shell.BentPipeLatency(geo.LatLng{Lat: 35.5, Lng: -106.3}, gws, 25, 16)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "measured bent-pipe RTT from 35.5N (quarter shell, %d epochs): min %.1f ms, mean %.1f ms, max %.1f ms\n",
		p.Samples, p.MinRTTMs, p.MeanRTTMs, p.MaxRTTMs)
	fmt.Fprintf(w, "max Ku Doppler at 550 km: %.0f kHz\n", orbit.MaxDopplerHz(550, 11.7)/1000)
	return nil
}

func runExport(ctx context.Context, w io.Writer, m leodivide.Model, ds *leodivide.Dataset, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Every export artifact is written atomically with close/flush
	// errors propagated (see internal/safeio).
	writeFile := func(name string, fn func(io.Writer) error) error {
		_, err := safeio.WriteFile(ctx, filepath.Join(dir, name), fn)
		return err
	}
	if err := writeFile("cells.geojson", func(out io.Writer) error {
		return report.WriteCellsGeoJSON(out, ds.Cells, 0)
	}); err != nil {
		return err
	}
	if err := writeFile("cells.csv", func(out io.Writer) error {
		return bdc.WriteCellsCSV(out, ds.Cells)
	}); err != nil {
		return err
	}
	if err := writeFile("gateways.geojson", func(out io.Writer) error {
		sites := usgeo.GatewaySites()
		names := make([]string, len(sites))
		positions := make([]geo.LatLng, len(sites))
		for i, g := range sites {
			names[i] = g.Name
			positions[i] = g.Pos
		}
		return report.WriteGatewaysGeoJSON(out, names, positions)
	}); err != nil {
		return err
	}
	// Figure data bundles, one CSV per figure, for external plotting.
	if err := writeFile("fig1_cdf.csv", func(out io.Writer) error {
		r, err := m.Fig1(ctx, ds)
		if err != nil {
			return err
		}
		xs := make([]float64, len(r.CDF))
		ys := make([]float64, len(r.CDF))
		for i, p := range r.CDF {
			xs[i], ys[i] = p.X, p.Y
		}
		return report.Series(out, "locations per cell vs cumulative probability", xs, ys)
	}); err != nil {
		return err
	}
	if err := writeFile("fig2_grid.csv", func(out io.Writer) error {
		r, err := m.Fig2(ctx, ds)
		if err != nil {
			return err
		}
		t := report.NewTable("", append([]string{"beamspread"}, labelsOf(r.Oversubs)...)...)
		for i, spread := range r.Spreads {
			row := make([]interface{}, 0, len(r.Oversubs)+1)
			row = append(row, spread)
			for _, v := range r.Fraction[i] {
				row = append(row, fmt.Sprintf("%.4f", v))
			}
			t.AddRow(row...)
		}
		_, err = io.WriteString(out, t.CSV())
		return err
	}); err != nil {
		return err
	}
	if err := writeFile("fig3_curves.csv", func(out io.Writer) error {
		t := report.NewTable("", "beamspread", "cap", "unserved", "satellites")
		curves, err := m.Fig3(ctx, ds)
		if err != nil {
			return err
		}
		for _, res := range curves {
			for _, p := range res.Points {
				t.AddRow(res.Spread, p.CapLocations, p.UnservedLocations, p.Satellites)
			}
		}
		_, err = io.WriteString(out, t.CSV())
		return err
	}); err != nil {
		return err
	}
	if err := writeFile("fig4_curves.csv", func(out io.Writer) error {
		r, err := m.Fig4(ctx, ds)
		if err != nil {
			return err
		}
		t := report.NewTable("", "plan", "share_of_income", "locations_unable")
		for name, curve := range r.Curves {
			for _, p := range curve {
				t.AddRow(name, fmt.Sprintf("%.4f", p.Share), fmt.Sprintf("%.0f", p.Count))
			}
		}
		_, err = io.WriteString(out, t.CSV())
		return err
	}); err != nil {
		return err
	}
	fmt.Fprintf(w, "exported cells.geojson, cells.csv, gateways.geojson and fig1-fig4 CSVs to %s\n", dir)
	return nil
}

func labelsOf(xs []float64) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%g", x)
	}
	return out
}

func renderBusyHour(ctx context.Context, w io.Writer, m leodivide.Model, ds *leodivide.Dataset, v any) error {
	r, err := resultAs[leodivide.BusyHourResult]("busyhour", v)
	if err != nil {
		return err
	}
	t := report.NewTable("Busy hour — the time dimension of P2",
		"quantity", "value")
	t.AddRow("local busy hour", fmt.Sprintf("%02d:00", r.PeakHourLocal))
	t.AddRow("busy-hour demand multiplier", fmt.Sprintf("%.2fx", r.PeakFactor))
	t.AddRow("peak-to-mean, single cell", fmt.Sprintf("%.2f", r.Stagger.CellPeakToMean))
	t.AddRow("peak-to-mean, one satellite footprint", fmt.Sprintf("%.2f", r.Stagger.FootprintPeakToMean))
	t.AddRow("peak-to-mean, national", fmt.Sprintf("%.2f", r.Stagger.NationalPeakToMean))
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "a satellite footprint spans ~1 time zone: staggering relieves the nation (%.2f) but not the satellite (%.2f) — P2 binds locally.\n\n",
		r.Stagger.NationalPeakToMean, r.Stagger.FootprintPeakToMean)
	bt := report.NewTable(fmt.Sprintf("Busy-hour per-location throughput with one beam spread %g ways", r.Spread),
		"cell", "Mbps per location")
	bt.AddRow("median cell", fmt.Sprintf("%.1f", r.MedianCellMbps))
	bt.AddRow("p90 cell", fmt.Sprintf("%.1f", r.P90CellMbps))
	bt.AddRow("peak cell", fmt.Sprintf("%.2f", r.PeakCellMbps))
	if _, err := bt.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "the FCC benchmark is 100 Mbps — the paper's \"degrading service quality at busy times\".\n\n")

	// Location-weighted experience: most locations live in dense cells.
	exp, err := m.Capacity.ExperienceUnderSpread(ds.Distribution(), r.Spread, 25, 100)
	if err != nil {
		return err
	}
	et := report.NewTable(
		fmt.Sprintf("Per-location throughput distribution (one beam spread %g ways)", exp.Spread),
		"quantile (by location)", "Mbps")
	et.AddRow("p10", fmt.Sprintf("%.2f", exp.P10Mbps))
	et.AddRow("median", fmt.Sprintf("%.2f", exp.MedianMbps))
	et.AddRow("p90", fmt.Sprintf("%.2f", exp.P90Mbps))
	et.AddRow("share at ≥25 Mbps", fmt.Sprintf("%.1f%%", 100*exp.FractionAtLeast[25]))
	et.AddRow("share at ≥100 Mbps", fmt.Sprintf("%.1f%%", 100*exp.FractionAtLeast[100]))
	if _, err := et.WriteTo(w); err != nil {
		return err
	}

	// Service quality over the day: the evening peak sweeping westward.
	points, err := m.Capacity.ServedFractionOverDay(ctx, traffic.DefaultProfile(), ds.Cells, r.Spread, m.MaxOversub, 24)
	if err != nil {
		return err
	}
	daily := core.SummarizeDaily(points)
	fmt.Fprintf(w, "\nserved-cell fraction over the day (spread %g, %g:1): best %.3f, worst %.3f at %02.0f:00 UTC (US evening).\n",
		r.Spread, m.MaxOversub, daily.BestFraction, daily.WorstFraction, daily.WorstUTCHour)
	return nil
}

func renderEcon(ctx context.Context, w io.Writer, m leodivide.Model, ds *leodivide.Dataset, v any) error {
	r, err := resultAs[leodivide.EconomicsResult]("econ", v)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Constellation economics — $%.1fM per satellite all-in, %g-year life (capped 20:1 scenarios)",
			r.Model.PerSatelliteUSD()/1e6, r.Model.SatelliteLifetimeYears),
		"beamspread", "satellites", "capex ($B)", "sustaining ($B/yr)", "$/location/month")
	for i, sc := range r.Scenarios {
		t.AddRow(leodivide.PaperTable2Spreads[i], sc.Satellites,
			fmt.Sprintf("%.1f", sc.CapexUSD/1e9),
			fmt.Sprintf("%.2f", sc.AnnualizedUSD/1e9),
			fmt.Sprintf("%.0f", sc.MonthlyPerLocationUSD))
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	tt := report.NewTable("The diminishing-returns tail in dollars (beamspread 10, F3 priced)",
		"locations gained", "additional satellites", "capex per location", "sustaining $/loc/month")
	for _, step := range r.Tail {
		tt.AddRow(step.LocationsGained, step.AdditionalSatellites,
			fmt.Sprintf("$%.1fM", step.CapexPerLocationUSD/1e6),
			fmt.Sprintf("$%.0fk", step.MonthlyPerLocationUSD/1e3))
	}
	if _, err := tt.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "Starlink Residential sells at $120/month; the paper's affordability bar is 2%% of income.\n")
	return nil
}

func renderCostCurve(ctx context.Context, w io.Writer, m leodivide.Model, ds *leodivide.Dataset, v any) error {
	r, err := resultAs[leodivide.CostCurveResult]("costcurve", v)
	if err != nil {
		return err
	}
	for _, sys := range r.Systems {
		t := report.NewTable(
			fmt.Sprintf("Cost curve — %s (%d authorized satellites, binding cell %.1f°N, %g:1 cap)",
				sys.DisplayName, sys.AuthorizedSatellites, sys.BindingLatDeg, r.MaxOversub),
			"fleet", "satellites", "required spread", "served fraction", "$/loc/month")
		for _, p := range sys.Points {
			t.AddRow(fmt.Sprintf("%.0f%%", 100*p.FleetFraction), p.Satellites,
				fmt.Sprintf("%.1f", p.RequiredSpread),
				fmt.Sprintf("%.4f", p.ServedFraction),
				fmt.Sprintf("$%.0f", p.MonthlyPerLocationUSD))
		}
		if _, err := t.WriteTo(w); err != nil {
			return err
		}
		if sys.Tail.LocationsGained > 0 {
			fmt.Fprintf(w, "%s diminishing-returns tail: +%d satellites buy %d more locations at $%.0f per location per month sustaining.\n\n",
				sys.DisplayName, sys.Tail.AdditionalSatellites, sys.Tail.LocationsGained,
				sys.Tail.MonthlyPerLocationUSD)
		}
	}
	return nil
}

func renderXConst(ctx context.Context, w io.Writer, m leodivide.Model, ds *leodivide.Dataset, v any) error {
	r, err := resultAs[leodivide.CrossConstellationResult]("xconst", v)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Cross-constellation — closing the divide under the 100/20 benchmark (%g:1 cap)", r.MaxOversub),
		"system", "authorized", "required", "spread", "served fraction", "capex ($B)", "$/loc/month")
	for _, row := range r.Rows {
		t.AddRow(row.DisplayName, row.AuthorizedSatellites, row.RequiredSatellites,
			fmt.Sprintf("%.1f", row.RequiredSpread),
			fmt.Sprintf("%.4f", row.ServedFraction),
			fmt.Sprintf("%.1f", row.FleetCapexUSD/1e9),
			fmt.Sprintf("$%.0f", row.MonthlyPerLocationUSD))
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "cheapest serving system: %s — every system hits the same per-cell cap; cost moves, the divide does not.\n", r.Cheapest)
	return nil
}

func renderXRegion(ctx context.Context, w io.Writer, m leodivide.Model, ds *leodivide.Dataset, v any) error {
	r, err := resultAs[leodivide.CrossRegionResult]("xregion", v)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Cross-region — which constraint binds where (%s, %g:1 cap, %.0f%% of income)",
			r.System, r.MaxOversub, 100*r.AffordShare),
		"region", "locations", "cells", "binding lat", "required sats", "spread", "served", "affordable", "binds")
	for _, row := range r.Rows {
		t.AddRow(row.DisplayName, row.TotalLocations, row.NumCells,
			fmt.Sprintf("%.1f°", row.BindingLatDeg),
			row.RequiredSatellites,
			fmt.Sprintf("%.1f", row.RequiredSpread),
			fmt.Sprintf("%.4f", row.ServedFraction),
			fmt.Sprintf("%.3f", row.AffordableFraction),
			row.BindingConstraint)
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "an inclined fleet thins toward the equator: the equatorial geography pays in satellites while low incomes bind; the dense mid-latitude one hits the per-cell cap first.\n")
	return nil
}

func runStability(ctx context.Context, w io.Writer, m leodivide.Model) error {
	r, err := m.Stability(ctx, 5, 0.25)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Stability — headline results across %d seeds (quarter-scale datasets)", r.Seeds),
		"quantity", "mean", "stddev", "min", "max", "rel spread")
	add := func(name string, s leodivide.StabilityStat, scale float64, unit string) {
		t.AddRow(name,
			fmt.Sprintf("%.4g%s", s.Mean*scale, unit),
			fmt.Sprintf("%.2g", s.StdDev*scale),
			fmt.Sprintf("%.4g", s.Min*scale),
			fmt.Sprintf("%.4g", s.Max*scale),
			fmt.Sprintf("%.2f%%", 100*s.RelSpread()))
	}
	add("constellation (beamspread 2, 20:1)", r.Table2Spread2, 1, "")
	add("unaffordable fraction", r.UnaffordableFraction, 100, "%")
	add("served fraction at 20:1", r.ServedFractionAt20, 100, "%")
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "pinned anchors (totals, peaks, quantiles) are identical across seeds; the residual spread is the unpinned geography.")
	return nil
}
