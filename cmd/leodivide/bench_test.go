package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"leodivide"
	"leodivide/internal/benchfmt"
)

// TestBenchWritesValidReport: a small-scale full sweep must produce a
// schema-valid report covering every registry experiment (plus
// "generate") at both worker counts — the same gate CI applies.
func TestBenchWritesValidReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	var buf bytes.Buffer
	err := run([]string{"-scale", "0.02", "bench", "-workers", "1,2", "-out", out}, &buf)
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	report, err := benchfmt.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	all := benchExperiments(leodivide.NewModel())
	if err := report.ValidateCoverage(all, 2); err != nil {
		t.Fatal(err)
	}
	wantResults := len(all) * 2
	if len(report.Results) != wantResults {
		t.Errorf("results = %d, want %d (%d experiments x 2 worker counts)",
			len(report.Results), wantResults, len(all))
	}
	if report.Scale != 0.02 || report.Seed != 1 {
		t.Errorf("report config = scale %v seed %d, want 0.02 / 1", report.Scale, report.Seed)
	}

	// The -check mode must accept what bench just wrote...
	var checkBuf bytes.Buffer
	if err := run([]string{"bench", "-check", out}, &checkBuf); err != nil {
		t.Errorf("bench -check rejected a fresh report: %v", err)
	}
	// ...and reject a corrupted copy.
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(t.TempDir(), "BENCH_bad.json")
	corrupted := strings.Replace(string(data), benchfmt.Schema, "leodivide-bench/v999", 1)
	if err := os.WriteFile(bad, []byte(corrupted), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"bench", "-check", bad}, &checkBuf); err == nil {
		t.Error("bench -check accepted a report with an unknown schema")
	}
}

// TestBenchFilterSkipsCoverageGate: a filtered run is a spot
// measurement; it must succeed without full coverage.
func TestBenchFilterSkipsCoverageGate(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_spot.json")
	var buf bytes.Buffer
	err := run([]string{"-scale", "0.02", "bench",
		"-workers", "1", "-experiments", "table2", "-out", out}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	report, err := benchfmt.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Results) != 1 || report.Results[0].Experiment != "table2" {
		t.Errorf("filtered report = %+v, want exactly one table2 result", report.Results)
	}
}

// TestCompareBenchReports pins the -against gate: within-threshold
// cells pass, a step-change regression fails naming the cell, mismatched
// seed/scale refuse to compare, and disjoint cell sets are an error
// rather than a silent pass.
func TestCompareBenchReports(t *testing.T) {
	mk := func(ns map[string]int64) benchfmt.Report {
		r := benchfmt.Report{Schema: benchfmt.Schema, Seed: 1, Scale: 0.25, Reps: 1}
		for exp, v := range ns {
			r.Results = append(r.Results, benchfmt.Result{Experiment: exp, Workers: 1, NsPerOp: v})
		}
		return r
	}
	var buf bytes.Buffer

	base := mk(map[string]int64{"table2": 1000, "fig3": 2000})
	within := mk(map[string]int64{"table2": 1100, "fig3": 1500})
	if err := compareBenchReports(&buf, within, base, "base.json", 0.20); err != nil {
		t.Errorf("10%% slower + 25%% faster should pass at 20%%: %v", err)
	}

	regressed := mk(map[string]int64{"table2": 1500, "fig3": 2000})
	err := compareBenchReports(&buf, regressed, base, "base.json", 0.20)
	if err == nil || !strings.Contains(err.Error(), "table2") {
		t.Errorf("50%% regression: err = %v, want table2 named", err)
	}

	// A fresh cell the baseline lacks is ignored, not a failure.
	extra := mk(map[string]int64{"table2": 1000, "newexp": 1 << 40})
	if err := compareBenchReports(&buf, extra, base, "base.json", 0.20); err != nil {
		t.Errorf("unmatched cell should be ignored: %v", err)
	}

	scaled := mk(map[string]int64{"table2": 1000})
	scaled.Scale = 0.5
	if err := compareBenchReports(&buf, scaled, base, "base.json", 0.20); err == nil {
		t.Error("mismatched scale must refuse to compare")
	}

	disjoint := mk(map[string]int64{"nosuch": 1})
	if err := compareBenchReports(&buf, disjoint, base, "base.json", 0.20); err == nil {
		t.Error("zero matched cells must be an error, not a silent pass")
	}
}

// TestBenchAgainstEndToEnd drives -against through the CLI: a run
// compared against its own output must pass (identical cells), and a
// doctored much-faster baseline must trip the gate.
func TestBenchAgainstEndToEnd(t *testing.T) {
	dir := t.TempDir()
	baseOut := filepath.Join(dir, "BENCH_base.json")
	var buf bytes.Buffer
	if err := run([]string{"-scale", "0.02", "bench",
		"-workers", "1", "-experiments", "table1", "-out", baseOut}, &buf); err != nil {
		t.Fatal(err)
	}
	freshOut := filepath.Join(dir, "BENCH_fresh.json")
	// Generous threshold: single-run wall-clock on a shared CI box is
	// noisy, and this test asserts plumbing, not performance.
	if err := run([]string{"-scale", "0.02", "bench", "-workers", "1",
		"-experiments", "table1", "-out", freshOut,
		"-against", baseOut, "-max-regress", "25"}, &buf); err != nil {
		t.Errorf("bench -against its own cells should pass at 2500%%: %v", err)
	}

	data, err := os.ReadFile(baseOut)
	if err != nil {
		t.Fatal(err)
	}
	base, err := benchfmt.Read(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Results {
		base.Results[i].NsPerOp = 1 // everything regresses vs this
	}
	doctored := filepath.Join(dir, "BENCH_fast.json")
	var enc bytes.Buffer
	if err := base.Write(&enc); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(doctored, enc.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scale", "0.02", "bench", "-workers", "1",
		"-experiments", "table1", "-out", freshOut,
		"-against", doctored}, &buf); err == nil {
		t.Error("bench -against a 1ns baseline should report a regression")
	}
}

func TestBenchBadFlags(t *testing.T) {
	var buf bytes.Buffer
	cases := [][]string{
		{"bench", "-workers", ""},
		{"bench", "-workers", "1,x"},
		{"bench", "-workers", "2,2"},
		{"bench", "-workers", "-3"},
		{"bench", "-reps", "0"},
		{"bench", "-experiments", "nosuch"},
	}
	for _, args := range cases {
		if err := run(append([]string{"-scale", "0.02"}, args...), &buf); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestParseWorkerCounts(t *testing.T) {
	got, err := parseWorkerCounts(" 1, 2 ,0")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 0 {
		t.Errorf("parseWorkerCounts = %v, want [1 2 0]", got)
	}
}

// TestMetricsFlag: -metrics must not change stdout (it reports on
// stderr), and must not error.
func TestMetricsFlag(t *testing.T) {
	var plain, instrumented bytes.Buffer
	if err := run([]string{"-scale", "0.02", "table1"}, &plain); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scale", "0.02", "-metrics", "-trace", "table1"}, &instrumented); err != nil {
		t.Fatal(err)
	}
	if plain.String() != instrumented.String() {
		t.Error("-metrics/-trace changed stdout; observability must report out-of-band")
	}
}
