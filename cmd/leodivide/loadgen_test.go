package main

import (
	"testing"
	"time"
)

// TestPercentileNearestRank pins the nearest-rank definition: the
// smallest element with at least q of the samples at or below it. The
// old truncating index (int(q*(n-1))) failed exactly these cases — at
// n=2 it reported p99 as the FASTER sample, and at n=100 it read p99
// one rank early.
func TestPercentileNearestRank(t *testing.T) {
	ms := func(vs ...int) []time.Duration {
		out := make([]time.Duration, len(vs))
		for i, v := range vs {
			out[i] = time.Duration(v) * time.Millisecond
		}
		return out
	}
	seq := func(n int) []time.Duration {
		vs := make([]int, n)
		for i := range vs {
			vs[i] = i + 1
		}
		return ms(vs...)
	}
	cases := []struct {
		name   string
		sorted []time.Duration
		q      float64
		want   time.Duration
	}{
		{"empty", nil, 0.99, 0},
		{"n=1 p50", ms(7), 0.50, 7 * time.Millisecond},
		{"n=1 p99", ms(7), 0.99, 7 * time.Millisecond},
		// ceil(0.5*2)=1 → first element for p50, but p99 must be the
		// slower of the two (the old code returned sorted[0] for both).
		{"n=2 p50", ms(3, 9), 0.50, 3 * time.Millisecond},
		{"n=2 p99", ms(3, 9), 0.99, 9 * time.Millisecond},
		{"n=3 p50", ms(1, 5, 9), 0.50, 5 * time.Millisecond},
		{"n=3 p99", ms(1, 5, 9), 0.99, 9 * time.Millisecond},
		// n=100: ceil(0.99*100)=99 → sorted[98], the 99th value. The old
		// truncating form indexed int(0.99*99)=98 too — but only by the
		// accident that 0.99*99 = 98.01; at n=101 it dropped a rank.
		{"n=100 p99", seq(100), 0.99, 99 * time.Millisecond},
		{"n=101 p99", seq(101), 0.99, 100 * time.Millisecond},
		{"n=100 p50", seq(100), 0.50, 50 * time.Millisecond},
		// q=1 is the max; q=0 clamps to the min rather than indexing -1.
		{"n=3 p100", ms(1, 5, 9), 1.0, 9 * time.Millisecond},
		{"n=3 p0", ms(1, 5, 9), 0.0, 1 * time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := percentile(tc.sorted, tc.q); got != tc.want {
				t.Errorf("percentile(%v, %v) = %v, want %v", tc.sorted, tc.q, got, tc.want)
			}
		})
	}
}
