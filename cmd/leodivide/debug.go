package main

// The -debug-addr server: pprof, expvar and the obs metrics snapshot
// over HTTP for live inspection of long runs (full-scale `all`, bench
// sweeps). Importing net/http/pprof and expvar registers their handlers
// on the default mux; /metrics adds the obs text snapshot.

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"sync"

	"leodivide/internal/obs"
)

// publishMetricsOnce guards the process-global expvar registration
// (expvar.Publish panics on duplicate names).
var publishMetricsOnce sync.Once

// startDebugServer serves pprof, expvar and /metrics on addr. It
// returns the bound address (useful with ":0") or an error if the
// listener cannot be opened; the server itself runs until process exit.
func startDebugServer(addr string) (string, error) {
	publishMetricsOnce.Do(func() {
		expvar.Publish("leodivide", expvar.Func(func() any {
			return obs.Default.Snapshot()
		}))
		http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			//lint:ignore errdrop HTTP response write; a disconnected debug client is not actionable
			obs.Default.Snapshot().WriteText(w)
		})
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("debug server: %w", err)
	}
	go func() {
		// The process exits with main; serving errors after a successful
		// bind are not actionable.
		//lint:ignore errdrop serving errors after a successful bind are not actionable; the process exits with main
		_ = http.Serve(ln, nil)
	}()
	return ln.Addr().String(), nil
}
