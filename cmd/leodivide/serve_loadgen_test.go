package main

import (
	"bytes"
	"context"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"leodivide"
)

// syncBuffer lets the test read server output while the serve goroutine
// is still writing it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenLine = regexp.MustCompile(`listening on http://(\S+)`)

// TestServeLoadgenEndToEnd is the CI smoke test in miniature: start the
// server on a free port, drive it with loadgen (which must observe a
// healthy hit rate and zero errors), then cancel the context and expect
// a clean drain.
func TestServeLoadgenEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("starts a server and generates a dataset")
	}
	cfg := leodivide.DefaultRunConfig()
	cfg.Scale = 0.02

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- runServe(ctx, &out, leodivide.ScenarioConfig{RunConfig: cfg}, []string{"-addr", "127.0.0.1:0", "-drain", "10s"})
	}()

	// The listening line prints only after the dataset is generated.
	var addr string
	for i := 0; i < 600; i++ {
		if m := listenLine.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("server exited before listening: %v (output %q)", err, out.String())
		case <-time.After(100 * time.Millisecond):
		}
	}
	if addr == "" {
		t.Fatalf("server never printed its address; output %q", out.String())
	}

	// 40 requests over 2 experiments x 8 knob/constellation/region
	// variants = 16 distinct scenarios, so at least 24/40 must be hits
	// or coalesced.
	var lout bytes.Buffer
	err := runLoadgen(context.Background(), &lout, []string{
		"-addr", addr, "-n", "40", "-concurrency", "8",
		"-experiments", "table1,fig1", "-wait", "5s", "-min-hit-rate", "0.5",
	})
	if err != nil {
		t.Fatalf("loadgen failed: %v\n%s", err, lout.String())
	}
	rep := lout.String()
	if !strings.Contains(rep, "0 errors") {
		t.Errorf("loadgen report missing zero-error line:\n%s", rep)
	}
	if !strings.Contains(rep, "p50") || !strings.Contains(rep, "p99") {
		t.Errorf("loadgen report missing latency percentiles:\n%s", rep)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("serve returned %v after cancellation, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not drain after context cancellation")
	}
	if !strings.Contains(out.String(), "drained and stopped") {
		t.Errorf("serve output missing drain confirmation: %q", out.String())
	}
}

func TestLoadgenFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"zero requests", []string{"-n", "0"}},
		{"zero workers", []string{"-concurrency", "0"}},
		{"empty experiments", []string{"-experiments", " , "}},
		{"unknown flag", []string{"-no-such-flag"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := runLoadgen(context.Background(), &buf, tc.args); err == nil {
				t.Errorf("loadgen %v should fail", tc.args)
			}
		})
	}
}

func TestLoadgenUnreachableServer(t *testing.T) {
	var buf bytes.Buffer
	// A reserved port nothing listens on: every request must error, and
	// loadgen must report that as a nonzero exit, not a quiet success.
	err := runLoadgen(context.Background(), &buf, []string{
		"-addr", "127.0.0.1:1", "-n", "3", "-concurrency", "2",
	})
	if err == nil || !strings.Contains(err.Error(), "requests failed") {
		t.Errorf("loadgen against a dead server returned %v, want request failures", err)
	}
}
