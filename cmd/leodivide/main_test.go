package main

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"leodivide/internal/safeio"
)

// runCmd invokes the CLI entry point with a small-scale dataset so the
// whole command matrix stays fast.
func runCmd(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	full := append([]string{"-scale", "0.05"}, args...)
	if err := run(full, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

func TestFig1Command(t *testing.T) {
	out := runCmd(t, "fig1")
	for _, want := range []string{"Figure 1", "max locations/cell", "# series"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig1 output missing %q", want)
		}
	}
}

func TestTable1Command(t *testing.T) {
	out := runCmd(t, "table1")
	for _, want := range []string{"Table 1", "3850", "17.3", "100/20"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q", want)
		}
	}
}

func TestTable2Command(t *testing.T) {
	out := runCmd(t, "table2")
	for _, want := range []string{"Table 2", "beamspread", "79287"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 output missing %q", want)
		}
	}
}

func TestTable2Calibrated(t *testing.T) {
	out := runCmd(t, "-calibrated", "table2")
	if !strings.Contains(out, "Table 2") {
		t.Error("calibrated table2 failed")
	}
}

func TestFig2Command(t *testing.T) {
	out := runCmd(t, "fig2")
	if !strings.Contains(out, "Figure 2") {
		t.Error("fig2 output missing title")
	}
}

func TestFig3Command(t *testing.T) {
	out := runCmd(t, "fig3")
	for _, want := range []string{"Figure 3", "additional satellites"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig3 output missing %q", want)
		}
	}
}

func TestFig4Command(t *testing.T) {
	out := runCmd(t, "fig4")
	for _, want := range []string{"Figure 4", "Starlink Residential", "Lifeline"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig4 output missing %q", want)
		}
	}
}

func TestFindingsCommand(t *testing.T) {
	out := runCmd(t, "findings")
	for _, want := range []string{"F1:", "F2:", "F3:", "F4:"} {
		if !strings.Contains(out, want) {
			t.Errorf("findings output missing %q", want)
		}
	}
}

func TestAblateCommand(t *testing.T) {
	out := runCmd(t, "ablate")
	for _, want := range []string{"Ablation", "baseline", "all-cells binding"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablate output missing %q", want)
		}
	}
}

func TestGenCommand(t *testing.T) {
	out := runCmd(t, "gen")
	if !strings.Contains(out, "cell_id,latitude,longitude,county_fips,unserved_locations") {
		t.Error("gen output missing cell CSV header")
	}
	lines := strings.Count(out, "\n")
	if lines < 500 {
		t.Errorf("gen produced only %d lines", lines)
	}
}

func TestGenLocationsCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "locs.csv")
	var buf bytes.Buffer
	err := run([]string{"-scale", "0.02", "-locations-csv", path, "-locations-scale", "0.01", "gen"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnknownCommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"nonsense"}, &buf); err == nil {
		t.Error("unknown command should fail")
	}
	if err := run([]string{}, &buf); err == nil {
		t.Error("missing command should fail")
	}
}

func TestBadScale(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "0", "fig1"}, &buf); err == nil {
		t.Error("scale 0 should fail")
	}
}

func TestFleetsCommand(t *testing.T) {
	out := runCmd(t, "fleets")
	for _, want := range []string{"Starlink Gen1", "Starlink Gen2", "coverage ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("fleets output missing %q", want)
		}
	}
}

func TestRefinedCommand(t *testing.T) {
	out := runCmd(t, "refined")
	for _, want := range []string{"Refined affordability", "median-only", "Lifeline eligibility"} {
		if !strings.Contains(out, want) {
			t.Errorf("refined output missing %q", want)
		}
	}
}

func TestStatesCommand(t *testing.T) {
	out := runCmd(t, "states")
	for _, want := range []string{"State report card", "oversub needed", "capacity-stressed"} {
		if !strings.Contains(out, want) {
			t.Errorf("states output missing %q", want)
		}
	}
}

func TestLatencyCommand(t *testing.T) {
	out := runCmd(t, "latency")
	for _, want := range []string{"Latency geometry", "GEO", "Doppler"} {
		if !strings.Contains(out, want) {
			t.Errorf("latency output missing %q", want)
		}
	}
}

func TestExportCommand(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-scale", "0.02", "-dir", dir, "export"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"cells.geojson", "cells.csv", "gateways.geojson"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing export %s: %v", name, err)
		}
	}
}

// TestExportReportsWriteFailures: report/export artifacts are written
// through safeio, so an injected write error, short write, or close
// failure on any output file must fail the export command instead of
// leaving a truncated artifact behind a nil error.
func TestExportReportsWriteFailures(t *testing.T) {
	boom := errors.New("disk full")
	for _, mode := range []struct {
		name    string
		install func() func()
	}{
		{"write error", func() func() {
			return safeio.SetWriteFault(func(path string, w io.Writer) io.Writer {
				if filepath.Base(path) == "fig1_cdf.csv" {
					return &safeio.FaultWriter{W: w, FailAfter: 8, Err: boom}
				}
				return w
			})
		}},
		{"short write", func() func() {
			return safeio.SetWriteFault(func(path string, w io.Writer) io.Writer {
				if filepath.Base(path) == "cells.geojson" {
					return &safeio.FaultWriter{W: w, FailAfter: 8, Short: true}
				}
				return w
			})
		}},
		{"close failure", func() func() {
			return safeio.SetCloseFault(func(path string) error {
				if strings.HasPrefix(filepath.Base(path), "cells.csv") {
					return boom
				}
				return nil
			})
		}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			defer mode.install()()
			var buf bytes.Buffer
			if err := run([]string{"-scale", "0.02", "-dir", t.TempDir(), "export"}, &buf); err == nil {
				t.Error("export swallowed the injected write failure")
			}
		})
	}
}

func TestGenLocationsCSVWriteFailure(t *testing.T) {
	boom := errors.New("disk full")
	defer safeio.SetWriteFault(func(path string, w io.Writer) io.Writer {
		return &safeio.FaultWriter{W: w, FailAfter: 32, Err: boom}
	})()
	locCSV := filepath.Join(t.TempDir(), "locations.csv")
	var buf bytes.Buffer
	err := run([]string{"-scale", "0.02", "-locations-csv", locCSV, "gen"}, &buf)
	if !errors.Is(err, boom) {
		t.Errorf("gen error = %v, want %v", err, boom)
	}
	if _, statErr := os.Stat(locCSV); !os.IsNotExist(statErr) {
		t.Error("failed gen left a locations.csv behind")
	}
}

func TestBusyHourCommand(t *testing.T) {
	out := runCmd(t, "busyhour")
	for _, want := range []string{"Busy hour", "peak-to-mean", "per-location throughput"} {
		if !strings.Contains(out, want) {
			t.Errorf("busyhour output missing %q", want)
		}
	}
}

func TestEconCommand(t *testing.T) {
	out := runCmd(t, "econ")
	for _, want := range []string{"Constellation economics", "capex", "diminishing-returns tail"} {
		if !strings.Contains(out, want) {
			t.Errorf("econ output missing %q", want)
		}
	}
}

func TestCostCurveCommand(t *testing.T) {
	out := runCmd(t, "costcurve")
	for _, want := range []string{"Cost curve", "Starlink Gen1", "Kuiper", "OneWeb", "$/loc/month"} {
		if !strings.Contains(out, want) {
			t.Errorf("costcurve output missing %q", want)
		}
	}
}

func TestXConstCommand(t *testing.T) {
	out := runCmd(t, "xconst")
	for _, want := range []string{"Cross-constellation", "Starlink Gen2", "Kuiper", "cheapest serving system"} {
		if !strings.Contains(out, want) {
			t.Errorf("xconst output missing %q", want)
		}
	}
}

// The -scenario flag is the HTTP wire contract on the CLI: a request
// body selects the experiment, constellation and knobs, and the
// command argument becomes optional.
func TestScenarioFlag(t *testing.T) {
	out := runCmd(t, "-scenario", `{"experiment":"xconst","constellation":"kuiper","max_oversub":25}`)
	if !strings.Contains(out, "Cross-constellation") || !strings.Contains(out, "25:1 cap") {
		t.Errorf("scenario-driven xconst output wrong:\n%.400s", out)
	}

	// The scenario's experiment and an explicit command argument must
	// agree; disagreement is an error, not a silent preference.
	var buf bytes.Buffer
	err := run([]string{"-scale", "0.05", "-scenario", `{"experiment":"table2"}`, "fig1"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "conflicts") {
		t.Errorf("conflicting command and scenario experiment returned %v, want conflict error", err)
	}

	// Unknown constellation and malformed JSON fail up front.
	if err := run([]string{"-scenario", `{"experiment":"table2","constellation":"iridium"}`}, &buf); err == nil {
		t.Error("unknown constellation in -scenario should fail")
	}
	if err := run([]string{"-scenario", `{"experiment":`}, &buf); err == nil {
		t.Error("malformed -scenario JSON should fail")
	}

	// A scenario scale override beats the shorthand flag: the pointer
	// fields round-trip the exact dataset identity.
	var buf2 bytes.Buffer
	if err := run([]string{"-scale", "0.02", "-scenario", `{"experiment":"table2","scale":0.05}`}, &buf2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), "79287") {
		t.Errorf("scenario scale override did not reproduce the 0.05-scale table2 anchor:\n%.400s", buf2.String())
	}
}

func TestAllCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	out := runCmd(t, "all")
	for _, want := range []string{
		"Figure 1", "Table 1", "Table 2", "Figure 2", "Figure 3",
		"Figure 4", "F1:", "Simulator cross-check", "Ablation",
		"Starlink Gen2", "Refined affordability", "Link budget",
		"State report card", "Latency geometry", "Busy hour",
		"Constellation economics", "Cost curve", "Cross-constellation",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("all output missing %q", want)
		}
	}
}

func TestExportFigureCSVs(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-scale", "0.05", "-dir", dir, "export"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig1_cdf.csv", "fig2_grid.csv", "fig3_curves.csv", "fig4_curves.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
		if len(data) < 100 {
			t.Errorf("%s implausibly small (%d bytes)", name, len(data))
		}
	}
}
