// Command leodivide-lint runs the repo's project-specific static
// analyzers (internal/analysis) over one or more packages and exits
// nonzero when any finding survives suppression. It is the static
// half of the reproduction's determinism story: `leodivide verify`
// replays the golden corpus, leodivide-lint proves the source cannot
// smuggle in the bug classes that would make that replay drift.
//
// Usage:
//
//	leodivide-lint [-json] [-out lint.json] [-rules detrand,maporder,...]
//	               [-ratchet LINT_SUPPRESSIONS] [-time-budget LINT_TIME_BUDGET]
//	               [packages]
//
// Packages default to ./... resolved from the enclosing module root.
// -out writes the JSON report to a file regardless of -json (the CI
// artifact). -ratchet reads a committed budget file holding the maximum
// allowed count of //lint:ignore directives and fails when the code
// exceeds it — suppressions may be spent down, never up. -time-budget
// reads a committed wall-time ceiling in milliseconds and fails when
// the analysis (load + all rules) ran longer, keeping the dataflow
// engine honest about staying off the critical path of `make lint`.
// Exit status: 0 clean, 1 findings or a failed ratchet/budget check,
// 2 usage or load/type error.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"leodivide/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("leodivide-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON (schema "+analysis.Schema+")")
	outFile := fs.String("out", "", "also write the JSON report to `file`")
	rules := fs.String("rules", "", "comma-separated rule subset to run (default: all); `help` lists the catalog")
	ratchet := fs.String("ratchet", "", "suppression budget `file`: fail if //lint:ignore directives exceed the committed count")
	timeBudget := fs.String("time-budget", "", "wall-time budget `file` (milliseconds): fail if the analysis ran longer")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *rules == "help" {
		for _, a := range analysis.DefaultAnalyzers() {
			engine := a.Engine
			if engine == "" {
				engine = analysis.EngineSyntax
			}
			fmt.Fprintf(stdout, "%-16s %-8s %s\n", a.Name, engine, a.Doc)
		}
		return 0
	}
	analyzers, err := analysis.Select(*rules)
	if err != nil {
		fmt.Fprintln(stderr, "leodivide-lint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	moduleDir, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "leodivide-lint:", err)
		return 2
	}
	//lint:ignore detrand wall-clock measurement for the -time-budget check; the duration is compared against a ceiling, never emitted into analysis results
	start := time.Now()
	diags, stats, err := analysis.RunWithStats(moduleDir, patterns, analyzers)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintln(stderr, "leodivide-lint:", err)
		return 2
	}
	if *outFile != "" {
		var buf bytes.Buffer
		if err := analysis.WriteJSON(&buf, diags, analyzers, stats); err != nil {
			fmt.Fprintln(stderr, "leodivide-lint:", err)
			return 2
		}
		if err := os.WriteFile(*outFile, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintln(stderr, "leodivide-lint:", err)
			return 2
		}
	}
	if *jsonOut {
		if err := analysis.WriteJSON(stdout, diags, analyzers, stats); err != nil {
			fmt.Fprintln(stderr, "leodivide-lint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	failed := false
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "leodivide-lint: %d finding(s)\n", len(diags))
		failed = true
	}
	if *ratchet != "" {
		budget, err := readBudget(filepath.Join(moduleDir, *ratchet), *ratchet)
		if err != nil {
			fmt.Fprintln(stderr, "leodivide-lint:", err)
			return 2
		}
		if stats.Suppressions > budget {
			fmt.Fprintf(stderr, "leodivide-lint: suppression ratchet: %d //lint:ignore directives exceed the committed budget of %d (%s); fix the finding instead of suppressing it, or justify lowering the bar in review\n",
				stats.Suppressions, budget, *ratchet)
			failed = true
		} else if stats.Suppressions < budget {
			fmt.Fprintf(stderr, "leodivide-lint: suppression ratchet: count is %d, budget %d — tighten %s to %d so retired suppressions cannot return\n",
				stats.Suppressions, budget, *ratchet, stats.Suppressions)
			failed = true
		}
	}
	if *timeBudget != "" {
		budget, err := readBudget(filepath.Join(moduleDir, *timeBudget), *timeBudget)
		if err != nil {
			fmt.Fprintln(stderr, "leodivide-lint:", err)
			return 2
		}
		if ms := elapsed.Milliseconds(); ms > int64(budget) {
			fmt.Fprintf(stderr, "leodivide-lint: time budget: analysis took %dms, budget %dms (%s); the engine must not become the slow gate\n",
				ms, budget, *timeBudget)
			failed = true
		}
	}
	if failed {
		return 1
	}
	return 0
}

// readBudget parses a committed budget file: one non-negative integer,
// comments (#) and blank lines ignored.
func readBudget(path, name string) (int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("reading budget file %s: %w", name, err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		n, err := strconv.Atoi(line)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("budget file %s: want a single non-negative integer, got %q", name, line)
		}
		return n, nil
	}
	return 0, fmt.Errorf("budget file %s: no budget line found", name)
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod, so the tool works from any subdirectory of the repo.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
