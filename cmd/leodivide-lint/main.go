// Command leodivide-lint runs the repo's project-specific static
// analyzers (internal/analysis) over one or more packages and exits
// nonzero when any finding survives suppression. It is the static
// half of the reproduction's determinism story: `leodivide verify`
// replays the golden corpus, leodivide-lint proves the source cannot
// smuggle in the bug classes that would make that replay drift.
//
// Usage:
//
//	leodivide-lint [-json] [-rules detrand,maporder,...] [packages]
//
// Packages default to ./... resolved from the enclosing module root.
// Exit status: 0 clean, 1 findings, 2 usage or load/type error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"leodivide/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("leodivide-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON (schema "+analysis.Schema+")")
	rules := fs.String("rules", "", "comma-separated rule subset to run (default: all); `help` lists the catalog")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *rules == "help" {
		for _, a := range analysis.DefaultAnalyzers() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := analysis.Select(*rules)
	if err != nil {
		fmt.Fprintln(stderr, "leodivide-lint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	moduleDir, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "leodivide-lint:", err)
		return 2
	}
	diags, err := analysis.Run(moduleDir, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "leodivide-lint:", err)
		return 2
	}
	if *jsonOut {
		if err := analysis.WriteJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, "leodivide-lint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "leodivide-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod, so the tool works from any subdirectory of the repo.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
