package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRulesHelp(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-rules", "help"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errb.String())
	}
	for _, rule := range []string{"detrand", "maporder", "floatcmp", "errdrop", "ctxfirst"} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-rules help misses %s:\n%s", rule, out.String())
		}
	}
}

func TestUnknownRuleIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-rules", "bogus", "./..."}, &out, &errb); code != 2 {
		t.Fatalf("exit %d; want 2 for an unknown rule", code)
	}
	if !strings.Contains(errb.String(), "unknown rule") {
		t.Fatalf("stderr %q; want unknown-rule message", errb.String())
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"./internal/analysis"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d over a clean package\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean run printed diagnostics: %s", out.String())
	}
}

// violatingModule writes a throwaway module with one detrand violation
// and chdirs into it, so the findings path (exit 1) and the JSON
// encoder can be exercised without planting a violation in this repo.
func violatingModule(t *testing.T) {
	t.Helper()
	dir := t.TempDir()
	writeTestFile(t, filepath.Join(dir, "go.mod"), "module tmpmod\n\ngo 1.24\n")
	writeTestFile(t, filepath.Join(dir, "bad.go"), `package tmpmod

import "time"

func Clock() time.Time { return time.Now() }
`)
	t.Chdir(dir)
}

func TestFindingsExitNonzero(t *testing.T) {
	violatingModule(t)
	var out, errb bytes.Buffer
	if code := run([]string{"./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit %d; want 1 when findings survive\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "bad.go:5") || !strings.Contains(out.String(), "detrand") {
		t.Fatalf("diagnostic line missing position or rule: %s", out.String())
	}
	if !strings.Contains(errb.String(), "1 finding(s)") {
		t.Fatalf("stderr %q; want the finding count", errb.String())
	}
}

func TestJSONOutput(t *testing.T) {
	violatingModule(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit %d; want 1\nstderr: %s", code, errb.String())
	}
	var rep struct {
		Schema      string `json:"schema"`
		Diagnostics []struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Rule    string `json:"rule"`
			Message string `json:"message"`
		} `json:"diagnostics"`
		Count int `json:"count"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Schema != "leodivide-lint/v1" {
		t.Errorf("schema %q; want leodivide-lint/v1", rep.Schema)
	}
	if rep.Count != 1 || len(rep.Diagnostics) != 1 {
		t.Fatalf("count %d with %d diagnostics; want exactly 1", rep.Count, len(rep.Diagnostics))
	}
	d := rep.Diagnostics[0]
	if d.File != "bad.go" || d.Line != 5 || d.Rule != "detrand" || d.Message == "" {
		t.Errorf("diagnostic %+v; want bad.go:5 under rule detrand with a message", d)
	}
}

func writeTestFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
