package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRulesHelp(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-rules", "help"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errb.String())
	}
	for _, rule := range []string{
		"detrand", "maporder", "floatcmp", "errdrop", "ctxfirst",
		"lockbalance", "waitbalance", "goroutinecapture", "maptaint",
	} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-rules help misses %s:\n%s", rule, out.String())
		}
	}
	// The catalog carries the engine column so rule authors can see
	// which rules ride the CFG/dataflow layer.
	if !strings.Contains(out.String(), "dataflow") || !strings.Contains(out.String(), "syntax") {
		t.Errorf("-rules help misses the engine column:\n%s", out.String())
	}
}

func TestUnknownRuleIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-rules", "bogus", "./..."}, &out, &errb); code != 2 {
		t.Fatalf("exit %d; want 2 for an unknown rule", code)
	}
	if !strings.Contains(errb.String(), "unknown rule") {
		t.Fatalf("stderr %q; want unknown-rule message", errb.String())
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"./internal/analysis"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d over a clean package\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean run printed diagnostics: %s", out.String())
	}
}

// violatingModule writes a throwaway module with one detrand violation
// and chdirs into it, so the findings path (exit 1) and the JSON
// encoder can be exercised without planting a violation in this repo.
func violatingModule(t *testing.T) {
	t.Helper()
	dir := t.TempDir()
	writeTestFile(t, filepath.Join(dir, "go.mod"), "module tmpmod\n\ngo 1.24\n")
	writeTestFile(t, filepath.Join(dir, "bad.go"), `package tmpmod

import "time"

func Clock() time.Time { return time.Now() }
`)
	t.Chdir(dir)
}

// cleanModule writes a throwaway module with no findings and n
// well-formed suppressions, and chdirs into it — the ratchet and
// time-budget paths need a clean baseline to isolate their exit codes.
func cleanModule(t *testing.T, suppressions int) {
	t.Helper()
	dir := t.TempDir()
	writeTestFile(t, filepath.Join(dir, "go.mod"), "module tmpmod\n\ngo 1.24\n")
	src := "package tmpmod\n\n"
	if suppressions > 0 {
		src += "import \"time\"\n\n"
	}
	for i := 0; i < suppressions; i++ {
		src += "//lint:ignore detrand test module: counted by the ratchet\n"
		src += "var _ = time.Now\n\n"
	}
	src += "func ok() int { return 1 }\n"
	writeTestFile(t, filepath.Join(dir, "clean.go"), src)
	t.Chdir(dir)
}

func TestFindingsExitNonzero(t *testing.T) {
	violatingModule(t)
	var out, errb bytes.Buffer
	if code := run([]string{"./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit %d; want 1 when findings survive\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "bad.go:5") || !strings.Contains(out.String(), "detrand") {
		t.Fatalf("diagnostic line missing position or rule: %s", out.String())
	}
	if !strings.Contains(errb.String(), "1 finding(s)") {
		t.Fatalf("stderr %q; want the finding count", errb.String())
	}
}

type jsonReport struct {
	Schema string `json:"schema"`
	Rules  []struct {
		Name   string `json:"name"`
		Engine string `json:"engine"`
	} `json:"rules"`
	Diagnostics []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Rule    string `json:"rule"`
		Message string `json:"message"`
	} `json:"diagnostics"`
	Count        int `json:"count"`
	Suppressions int `json:"suppressions"`
}

func TestJSONOutput(t *testing.T) {
	violatingModule(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit %d; want 1\nstderr: %s", code, errb.String())
	}
	var rep jsonReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Schema != "leodivide-lint/v2" {
		t.Errorf("schema %q; want leodivide-lint/v2", rep.Schema)
	}
	if rep.Count != 1 || len(rep.Diagnostics) != 1 {
		t.Fatalf("count %d with %d diagnostics; want exactly 1", rep.Count, len(rep.Diagnostics))
	}
	d := rep.Diagnostics[0]
	if d.File != "bad.go" || d.Line != 5 || d.Rule != "detrand" || d.Message == "" {
		t.Errorf("diagnostic %+v; want bad.go:5 under rule detrand with a message", d)
	}
	engines := map[string]string{}
	for _, r := range rep.Rules {
		engines[r.Name] = r.Engine
	}
	if len(engines) != 9 {
		t.Errorf("rules list has %d entries; want the nine-rule catalog", len(engines))
	}
	if engines["detrand"] != "syntax" || engines["maptaint"] != "dataflow" {
		t.Errorf("engine column wrong: detrand=%q maptaint=%q", engines["detrand"], engines["maptaint"])
	}
}

func TestOutFileWritesReport(t *testing.T) {
	violatingModule(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-out", "lint.json", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit %d; want 1 (findings still count with -out)\nstderr: %s", code, errb.String())
	}
	raw, err := os.ReadFile("lint.json")
	if err != nil {
		t.Fatalf("-out did not write the report: %v", err)
	}
	var rep jsonReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("-out file is not valid JSON: %v\n%s", err, raw)
	}
	if rep.Schema != "leodivide-lint/v2" || rep.Count != 1 {
		t.Errorf("-out report = schema %q count %d; want v2 with 1 finding", rep.Schema, rep.Count)
	}
	// Without -json the human lines still go to stdout.
	if !strings.Contains(out.String(), "detrand") {
		t.Errorf("-out swallowed the human-readable output: %s", out.String())
	}
}

func TestRatchetExactCountPasses(t *testing.T) {
	cleanModule(t, 2)
	writeTestFile(t, "LINT_SUPPRESSIONS", "# committed suppression budget\n2\n")
	var out, errb bytes.Buffer
	if code := run([]string{"-ratchet", "LINT_SUPPRESSIONS", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit %d at an exact budget match; stderr: %s", code, errb.String())
	}
}

func TestRatchetFailsAboveBudget(t *testing.T) {
	cleanModule(t, 3)
	writeTestFile(t, "LINT_SUPPRESSIONS", "2\n")
	var out, errb bytes.Buffer
	if code := run([]string{"-ratchet", "LINT_SUPPRESSIONS", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit %d; want 1 when suppressions exceed the budget", code)
	}
	if !strings.Contains(errb.String(), "exceed the committed budget") {
		t.Fatalf("stderr %q; want the over-budget message", errb.String())
	}
}

func TestRatchetFailsBelowBudget(t *testing.T) {
	// The budget must be spent down in the same change that retires a
	// suppression, or retired ones could silently return.
	cleanModule(t, 1)
	writeTestFile(t, "LINT_SUPPRESSIONS", "2\n")
	var out, errb bytes.Buffer
	if code := run([]string{"-ratchet", "LINT_SUPPRESSIONS", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit %d; want 1 when the budget is stale-high", code)
	}
	if !strings.Contains(errb.String(), "tighten") {
		t.Fatalf("stderr %q; want the tighten-the-budget message", errb.String())
	}
}

func TestRatchetMissingOrMalformedBudget(t *testing.T) {
	cleanModule(t, 0)
	var out, errb bytes.Buffer
	if code := run([]string{"-ratchet", "LINT_SUPPRESSIONS", "./..."}, &out, &errb); code != 2 {
		t.Fatalf("exit %d; want 2 for a missing budget file", code)
	}
	writeTestFile(t, "LINT_SUPPRESSIONS", "# only comments\n")
	errb.Reset()
	if code := run([]string{"-ratchet", "LINT_SUPPRESSIONS", "./..."}, &out, &errb); code != 2 {
		t.Fatalf("exit %d; want 2 for a budget file with no budget line", code)
	}
	writeTestFile(t, "LINT_SUPPRESSIONS", "-3\n")
	errb.Reset()
	if code := run([]string{"-ratchet", "LINT_SUPPRESSIONS", "./..."}, &out, &errb); code != 2 {
		t.Fatalf("exit %d; want 2 for a negative budget", code)
	}
}

func TestTimeBudget(t *testing.T) {
	// The module imports time, so the analysis source-imports a real
	// stdlib package and reliably takes >0ms.
	cleanModule(t, 1)
	// A generous ceiling passes...
	writeTestFile(t, "LINT_TIME_BUDGET", "# milliseconds\n600000\n")
	var out, errb bytes.Buffer
	if code := run([]string{"-time-budget", "LINT_TIME_BUDGET", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit %d under a generous time budget; stderr: %s", code, errb.String())
	}
	// ...and an impossible one fails with the budget message.
	writeTestFile(t, "LINT_TIME_BUDGET", "0\n")
	errb.Reset()
	if code := run([]string{"-time-budget", "LINT_TIME_BUDGET", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit %d; want 1 when the analysis outruns the budget", code)
	}
	if !strings.Contains(errb.String(), "time budget") {
		t.Fatalf("stderr %q; want the time-budget message", errb.String())
	}
}

func writeTestFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
