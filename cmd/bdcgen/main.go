// Command bdcgen generates synthetic National Broadband Map datasets
// in every format the library speaks: per-cell CSV, per-location CSV,
// provider-availability CSV, and GeoJSON. It is the data-production
// side of the reproduction — everything the capacity and affordability
// analyses consume can be regenerated, inspected, and re-ingested from
// these files.
//
// Usage:
//
//	bdcgen -out DIR [-seed N] [-total N] [-location-scale F] [-providers]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"leodivide/internal/bdc"
	"leodivide/internal/demand"
	"leodivide/internal/obs"
	"leodivide/internal/report"
	"leodivide/internal/safeio"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "bdcgen:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	ctx := context.Background()
	fs := flag.NewFlagSet("bdcgen", flag.ContinueOnError)
	out := fs.String("out", "bdc-out", "output directory")
	seed := fs.Int64("seed", 1, "generation seed")
	total := fs.Int("total", 4672000, "total un(der)served locations")
	locScale := fs.Float64("location-scale", 0.01, "fraction of locations to expand into per-location records")
	providers := fs.Bool("providers", false, "also emit provider-availability records")
	geojson := fs.Bool("geojson", true, "emit cells.geojson")
	metrics := fs.Bool("metrics", false, "print the metric snapshot (generation timings, safeio write counters) after generation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *metrics {
		defer func() {
			fmt.Fprintln(w, "--- metrics ---")
			//lint:ignore errdrop best-effort metrics dump to the diagnostic writer after generation already succeeded
			obs.Default.Snapshot().WriteText(w)
		}()
	}

	cfg := bdc.DefaultGenConfig()
	cfg.Seed = *seed
	if *total != cfg.TotalLocations {
		// Rescale the pinned peaks with the total so the distribution
		// shape survives.
		ratio := float64(*total) / float64(cfg.TotalLocations)
		for i := range cfg.Peaks {
			cfg.Peaks[i].Locations = int(float64(cfg.Peaks[i].Locations) * ratio)
			if cfg.Peaks[i].Locations < 1 {
				cfg.Peaks[i].Locations = 1
			}
		}
		cfg.TotalLocations = *total
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	cells, err := bdc.GenerateCells(ctx, cfg)
	if err != nil {
		return err
	}
	if err := writeTo(ctx, *out, "cells.csv", func(f io.Writer) error {
		return bdc.WriteCellsCSV(f, cells)
	}); err != nil {
		return err
	}
	fmt.Fprintf(w, "bdcgen: %d cells -> cells.csv\n", len(cells))

	if *geojson {
		if err := writeTo(ctx, *out, "cells.geojson", func(f io.Writer) error {
			return report.WriteCellsGeoJSON(f, cells, 0)
		}); err != nil {
			return err
		}
		fmt.Fprintf(w, "bdcgen: cells.geojson written\n")
	}

	var locs []demand.Location
	if *locScale > 0 {
		locs, err = bdc.GenerateLocations(cfg, cells, *locScale)
		if err != nil {
			return err
		}
		if err := writeTo(ctx, *out, "locations.csv", func(f io.Writer) error {
			return bdc.WriteLocationsCSV(f, locs)
		}); err != nil {
			return err
		}
		fmt.Fprintf(w, "bdcgen: %d locations -> locations.csv\n", len(locs))
	}

	if *providers {
		if locs == nil {
			return fmt.Errorf("providers require -location-scale > 0")
		}
		records := bdc.GenerateProviderRecords(*seed, locs)
		if err := writeTo(ctx, *out, "availability.csv", func(f io.Writer) error {
			return bdc.WriteProviderCSV(f, records)
		}); err != nil {
			return err
		}
		fmt.Fprintf(w, "bdcgen: %d provider records -> availability.csv\n", len(records))
	}
	return nil
}

// writeTo writes one output artifact atomically via safeio, so a
// failed or interrupted generation can never leave a truncated CSV
// that downstream ingestion would half-read.
func writeTo(ctx context.Context, dir, name string, fn func(io.Writer) error) error {
	_, err := safeio.WriteFile(ctx, filepath.Join(dir, name), fn)
	return err
}
