package main

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"leodivide/internal/bdc"
	"leodivide/internal/safeio"
)

func TestBdcgenEndToEnd(t *testing.T) {
	dir := t.TempDir()
	var log bytes.Buffer
	err := run([]string{
		"-out", dir, "-seed", "7", "-total", "50000",
		"-location-scale", "0.1", "-providers",
	}, &log)
	if err != nil {
		t.Fatal(err)
	}
	// Every advertised file exists and re-ingests cleanly.
	cellsFile, err := os.Open(filepath.Join(dir, "cells.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer cellsFile.Close()
	cells, err := bdc.ReadCellsCSV(cellsFile)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range cells {
		total += c.Locations
	}
	if total != 50000 {
		t.Errorf("cells total %d, want 50000", total)
	}

	locFile, err := os.Open(filepath.Join(dir, "locations.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer locFile.Close()
	locs, err := bdc.ReadLocationsCSV(locFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := bdc.Validate(locs); err != nil {
		t.Errorf("locations invalid: %v", err)
	}

	availFile, err := os.Open(filepath.Join(dir, "availability.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer availFile.Close()
	records, err := bdc.ReadProviderCSV(availFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) < len(locs) {
		t.Errorf("%d provider records for %d locations", len(records), len(locs))
	}

	if _, err := os.Stat(filepath.Join(dir, "cells.geojson")); err != nil {
		t.Errorf("missing geojson: %v", err)
	}
}

// An injected write failure on any generated artifact must fail the
// whole run and leave no partially written file at the destination.
func TestBdcgenReportsWriteFailures(t *testing.T) {
	boom := errors.New("disk full")
	for _, artifact := range []string{"cells.csv", "cells.geojson", "locations.csv"} {
		t.Run(artifact, func(t *testing.T) {
			defer safeio.SetWriteFault(func(path string, w io.Writer) io.Writer {
				if filepath.Base(path) == artifact {
					return &safeio.FaultWriter{W: w, FailAfter: 8, Err: boom}
				}
				return w
			})()
			dir := t.TempDir()
			var log bytes.Buffer
			err := run([]string{"-out", dir, "-seed", "7", "-total", "50000", "-location-scale", "0.05"}, &log)
			if !errors.Is(err, boom) {
				t.Fatalf("run error = %v, want %v", err, boom)
			}
			if _, statErr := os.Stat(filepath.Join(dir, artifact)); !os.IsNotExist(statErr) {
				t.Errorf("failed run left %s behind", artifact)
			}
		})
	}
}

func TestBdcgenErrors(t *testing.T) {
	var log bytes.Buffer
	if err := run([]string{"-out", t.TempDir(), "-total", "0"}, &log); err == nil {
		t.Error("zero total should fail")
	}
	if err := run([]string{"-out", t.TempDir(), "-location-scale", "0", "-providers"}, &log); err == nil {
		t.Error("providers without locations should fail")
	}
}
