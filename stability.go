package leodivide

import (
	"context"
	"fmt"
	"math"

	"leodivide/internal/core"
	"leodivide/internal/par"
)

// StabilityResult reports how the headline findings vary across
// independently seeded synthetic datasets — the reproduction's answer
// to "how much of this is the particular random draw?". The pinned
// calibration anchors (totals, peaks, percentile structure) are
// identical across seeds; what varies is geography (which cells sit
// where) and county attribution, so the variation isolates the
// model's sensitivity to the unpinned degrees of freedom.
type StabilityResult struct {
	Seeds int
	// Table2Spread2 summarizes the capped beamspread-2 constellation.
	Table2Spread2 StabilityStat
	// UnaffordableFraction summarizes Finding 4.
	UnaffordableFraction StabilityStat
	// ServedFractionAt20 summarizes Finding 1 (pinned anchors make it
	// exactly constant; reported as a self-check).
	ServedFractionAt20 StabilityStat
}

// StabilityStat is a mean ± standard deviation pair with extremes.
type StabilityStat struct {
	Mean, StdDev, Min, Max float64
}

// RelSpread returns StdDev/Mean (0 when the mean is 0).
func (s StabilityStat) RelSpread() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.StdDev / s.Mean
}

// unsubsidizedStarlinkFraction extracts Finding 4's headline number —
// the fraction of locations that cannot afford the unsubsidized
// Starlink Residential plan — from a Fig4 result. A comparison that
// lacks that plan is an error: silently feeding an empty slice to
// newStabilityStat would report Mean=NaN, Min=+Inf, Max=-Inf.
func unsubsidizedStarlinkFraction(f4 Fig4Result) (float64, error) {
	for _, r := range f4.Results {
		if r.Plan.Name == "Starlink Residential" && r.Subsidy == nil {
			return r.UnaffordableFraction, nil
		}
	}
	return 0, fmt.Errorf(`no unsubsidized "Starlink Residential" plan in the affordability comparison; cannot compute Finding-4 stability`)
}

func newStabilityStat(values []float64) StabilityStat {
	out := StabilityStat{Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, v := range values {
		sum += v
		out.Min = math.Min(out.Min, v)
		out.Max = math.Max(out.Max, v)
	}
	out.Mean = sum / float64(len(values))
	varsum := 0.0
	for _, v := range values {
		d := v - out.Mean
		varsum += d * d
	}
	if len(values) > 1 {
		out.StdDev = math.Sqrt(varsum / float64(len(values)-1))
	}
	return out
}

// Stability regenerates the dataset under nSeeds different seeds and
// measures the dispersion of the headline results. scale shrinks the
// datasets for speed (1.0 = full scale). Seeds are evaluated
// concurrently (each is an independent generation) and collected in
// seed order, so the statistics match the serial sweep exactly.
func (m Model) Stability(ctx context.Context, nSeeds int, scale float64) (StabilityResult, error) {
	if nSeeds < 2 {
		return StabilityResult{}, fmt.Errorf("leodivide: stability needs ≥2 seeds, got %d", nSeeds)
	}
	type seedResult struct {
		sats, unaff, served float64
	}
	results, err := par.Map(ctx, m.Workers, nSeeds, func(i int) (seedResult, error) {
		seed := int64(i + 1)
		ds, err := GenerateDataset(ctx, WithSeed(seed), WithScale(scale))
		if err != nil {
			return seedResult{}, fmt.Errorf("leodivide: seed %d: %w", seed, err)
		}
		size := m.Capacity.Size(ds.Distribution(), core.CappedOversub, 2, m.MaxOversub)
		f1, err := m.Finding1(ctx, ds)
		if err != nil {
			return seedResult{}, err
		}
		f4, err := m.Fig4(ctx, ds)
		if err != nil {
			return seedResult{}, err
		}
		unaff, err := unsubsidizedStarlinkFraction(f4)
		if err != nil {
			return seedResult{}, fmt.Errorf("leodivide: seed %d: %w", seed, err)
		}
		return seedResult{
			sats:   float64(size.Satellites),
			served: f1.ServedFractionAtCap,
			unaff:  unaff,
		}, nil
	})
	if err != nil {
		return StabilityResult{}, err
	}
	var sats, unaff, served []float64
	for _, r := range results {
		sats = append(sats, r.sats)
		served = append(served, r.served)
		unaff = append(unaff, r.unaff)
	}
	return StabilityResult{
		Seeds:                nSeeds,
		Table2Spread2:        newStabilityStat(sats),
		UnaffordableFraction: newStabilityStat(unaff),
		ServedFractionAt20:   newStabilityStat(served),
	}, nil
}
