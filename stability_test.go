package leodivide

import (
	"math"
	"strings"
	"testing"

	"leodivide/internal/afford"
)

// The stability sweep must fail loudly when the affordability
// comparison lacks the plan Finding 4 is defined over — previously an
// empty sample slice flowed into newStabilityStat and came back as
// Mean=NaN, Min=+Inf, Max=-Inf with a nil error.
func TestUnsubsidizedStarlinkFractionMissingPlan(t *testing.T) {
	cases := []Fig4Result{
		{}, // no plans at all
		{Results: []afford.Result{ // only a subsidized variant
			{Plan: afford.StarlinkResidential(), Subsidy: &afford.Subsidy{Name: "Lifeline"}},
			{Plan: afford.Plan{Name: "Spectrum 500"}},
		}},
	}
	for i, f4 := range cases {
		_, err := unsubsidizedStarlinkFraction(f4)
		if err == nil {
			t.Errorf("case %d: missing plan went unreported", i)
			continue
		}
		if !strings.Contains(err.Error(), "Starlink Residential") {
			t.Errorf("case %d: error %q does not name the missing plan", i, err)
		}
	}
}

func TestUnsubsidizedStarlinkFractionFound(t *testing.T) {
	f4 := Fig4Result{Results: []afford.Result{
		{Plan: afford.StarlinkResidential(), Subsidy: &afford.Subsidy{Name: "Lifeline"}, UnaffordableFraction: 0.64},
		{Plan: afford.StarlinkResidential(), UnaffordableFraction: 0.745},
	}}
	got, err := unsubsidizedStarlinkFraction(f4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.745 {
		t.Errorf("fraction = %v, want the unsubsidized plan's 0.745", got)
	}
}

func TestNewStabilityStatDefined(t *testing.T) {
	s := newStabilityStat([]float64{2, 4})
	if s.Mean != 3 || s.Min != 2 || s.Max != 4 {
		t.Errorf("stat = %+v", s)
	}
	if math.IsNaN(s.Mean) || math.IsInf(s.Min, 0) || math.IsInf(s.Max, 0) {
		t.Errorf("stat degenerate: %+v", s)
	}
}
