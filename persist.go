package leodivide

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"leodivide/internal/bdc"
	"leodivide/internal/census"
	"leodivide/internal/demand"
	"leodivide/internal/hexgrid"
	"leodivide/internal/region"
	"leodivide/internal/safeio"
)

// Dataset persistence: a saved dataset is a directory holding the
// per-cell CSV, the county income CSV, and a manifest (dataset.json)
// recording the shape of the data plus a SHA-256 per data file. All
// writes go through internal/safeio, so a crash, full disk, or failed
// flush can never leave a truncated file that a later LoadDataset
// would quietly ingest: Save either completes every file atomically or
// reports an error, and LoadDataset verifies each file against its
// manifest checksum before parsing a single record. See DESIGN.md §8
// for the on-disk format.

const (
	datasetMetaFile    = "dataset.json"
	datasetCellsFile   = "cells.csv"
	datasetIncomesFile = "incomes.csv"

	// datasetFormatVersion 2 added the per-file SHA-256 manifest.
	// Version-1 directories (no "sha256" key) still load, without
	// checksum verification but with full structural validation.
	datasetFormatVersion = 2
)

type datasetMeta struct {
	FormatVersion int   `json:"format_version"`
	Seed          int64 `json:"seed"`
	Resolution    int   `json:"resolution"`
	Locations     int   `json:"locations"`
	Cells         int   `json:"cells"`
	// Region and Scale record the dataset's generation identity so a
	// loaded dataset reruns region-aware experiments (xregion) exactly
	// as the generated one would. Both omitempty: directories written
	// before the region layer lack them and load with the documented
	// fallback (default region, full scale).
	Region string  `json:"region,omitempty"`
	Scale  float64 `json:"scale,omitempty"`
	// Checksums maps data file name to its hex SHA-256.
	Checksums map[string]string `json:"sha256,omitempty"`
}

// Save writes the dataset into dir (created if needed). Every file is
// written atomically; any write, flush, or close failure surfaces as a
// non-nil error. The manifest is written last, so a directory with a
// valid manifest always has fully written, checksummed data files.
// Cancellation is observed between files (see safeio.WriteFile); a
// cancelled Save never leaves a directory with a valid manifest.
func (d *Dataset) Save(ctx context.Context, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cellsSum, err := safeio.WriteFile(ctx, filepath.Join(dir, datasetCellsFile), func(w io.Writer) error {
		return bdc.WriteCellsCSV(w, d.Cells)
	})
	if err != nil {
		return fmt.Errorf("leodivide: saving cells: %w", err)
	}
	incomesSum, err := safeio.WriteFile(ctx, filepath.Join(dir, datasetIncomesFile), func(w io.Writer) error {
		return d.Incomes.WriteCSV(w)
	})
	if err != nil {
		return fmt.Errorf("leodivide: saving incomes: %w", err)
	}
	meta := datasetMeta{
		FormatVersion: datasetFormatVersion,
		Seed:          d.Seed,
		Resolution:    int(d.Resolution),
		Locations:     d.TotalLocations(),
		Cells:         len(d.Cells),
		Region:        d.Region,
		Scale:         d.Scale,
		Checksums: map[string]string{
			datasetCellsFile:   cellsSum,
			datasetIncomesFile: incomesSum,
		},
	}
	metaBytes, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	if _, err := safeio.WriteFileBytes(ctx, filepath.Join(dir, datasetMetaFile), append(metaBytes, '\n')); err != nil {
		return fmt.Errorf("leodivide: saving metadata: %w", err)
	}
	return nil
}

// LoadDataset reads a dataset saved with Save. Each data file is
// verified against its manifest SHA-256 before parsing (any corruption
// — truncation, a single flipped byte — is a checksum mismatch), and
// the parsed records are validated against the metadata: cell count,
// per-cell resolution, location total, and county coverage of the
// income table.
func LoadDataset(ctx context.Context, dir string) (*Dataset, error) {
	metaBytes, err := safeio.ReadFileVerified(ctx, filepath.Join(dir, datasetMetaFile), "")
	if err != nil {
		return nil, fmt.Errorf("leodivide: reading metadata: %w", err)
	}
	var meta datasetMeta
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return nil, fmt.Errorf("leodivide: parsing metadata: %w", err)
	}
	res := hexgrid.Resolution(meta.Resolution)
	if !res.Valid() {
		return nil, fmt.Errorf("leodivide: invalid resolution %d in metadata", meta.Resolution)
	}
	// Scale 0 is the pre-region manifest's absent value (treated as
	// full scale by region-aware experiments); anything else must be a
	// real generation scale.
	if math.IsNaN(meta.Scale) || meta.Scale < 0 || meta.Scale > 1 {
		return nil, fmt.Errorf("leodivide: invalid scale %v in metadata", meta.Scale)
	}
	if meta.Region != "" {
		if _, ok := region.ByName(meta.Region); !ok {
			return nil, fmt.Errorf("leodivide: unknown region %q in metadata", meta.Region)
		}
	}

	sumFor := func(name string) (string, error) {
		if meta.Checksums == nil {
			return "", nil // version-1 directory: no manifest checksums
		}
		sum, ok := meta.Checksums[name]
		if !ok || sum == "" {
			return "", fmt.Errorf("leodivide: manifest has no checksum for %s", name)
		}
		return sum, nil
	}

	cellsSum, err := sumFor(datasetCellsFile)
	if err != nil {
		return nil, err
	}
	cellsBytes, err := safeio.ReadFileVerified(ctx, filepath.Join(dir, datasetCellsFile), cellsSum)
	if err != nil {
		return nil, err
	}
	cells, err := bdc.ReadCellsCSV(bytes.NewReader(cellsBytes))
	if err != nil {
		return nil, err
	}
	if len(cells) != meta.Cells {
		return nil, fmt.Errorf("leodivide: %d cells on disk, metadata says %d", len(cells), meta.Cells)
	}
	for i, c := range cells {
		if got := c.ID.Resolution(); got != res {
			return nil, fmt.Errorf("leodivide: cell %d has resolution %d, metadata says %d", i, got, res)
		}
	}

	incomesSum, err := sumFor(datasetIncomesFile)
	if err != nil {
		return nil, err
	}
	incomesBytes, err := safeio.ReadFileVerified(ctx, filepath.Join(dir, datasetIncomesFile), incomesSum)
	if err != nil {
		return nil, err
	}
	incomes, err := census.ReadCSV(bytes.NewReader(incomesBytes))
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		if _, ok := incomes.Lookup(c.CountyFIPS); !ok {
			return nil, fmt.Errorf("leodivide: cell %d references county %s absent from the income table", i, c.CountyFIPS)
		}
	}

	dist, err := demand.NewDistribution(cells)
	if err != nil {
		return nil, err
	}
	if dist.TotalLocations() != meta.Locations {
		return nil, fmt.Errorf("leodivide: %d locations on disk, metadata says %d",
			dist.TotalLocations(), meta.Locations)
	}
	return &Dataset{
		Cells:      cells,
		Incomes:    incomes,
		Resolution: res,
		Seed:       meta.Seed,
		Region:     meta.Region,
		Scale:      meta.Scale,
		dist:       dist,
	}, nil
}
