package leodivide

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"leodivide/internal/bdc"
	"leodivide/internal/census"
	"leodivide/internal/demand"
	"leodivide/internal/hexgrid"
)

// Dataset persistence: a saved dataset is a directory holding the
// per-cell CSV, the county income CSV, and a small metadata file, so
// an analysis can be re-run later (or by someone else) on exactly the
// same inputs without regenerating them.

const (
	datasetMetaFile    = "dataset.json"
	datasetCellsFile   = "cells.csv"
	datasetIncomesFile = "incomes.csv"
)

type datasetMeta struct {
	Seed       int64 `json:"seed"`
	Resolution int   `json:"resolution"`
	Locations  int   `json:"locations"`
	Cells      int   `json:"cells"`
}

// Save writes the dataset into dir (created if needed).
func (d *Dataset) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	meta := datasetMeta{
		Seed:       d.Seed,
		Resolution: int(d.Resolution),
		Locations:  d.TotalLocations(),
		Cells:      len(d.Cells),
	}
	metaBytes, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, datasetMetaFile), metaBytes, 0o644); err != nil {
		return err
	}
	cellsFile, err := os.Create(filepath.Join(dir, datasetCellsFile))
	if err != nil {
		return err
	}
	defer cellsFile.Close()
	if err := bdc.WriteCellsCSV(cellsFile, d.Cells); err != nil {
		return err
	}
	incomesFile, err := os.Create(filepath.Join(dir, datasetIncomesFile))
	if err != nil {
		return err
	}
	defer incomesFile.Close()
	return d.Incomes.WriteCSV(incomesFile)
}

// LoadDataset reads a dataset saved with Save, validating that the
// files agree with the metadata.
func LoadDataset(dir string) (*Dataset, error) {
	metaBytes, err := os.ReadFile(filepath.Join(dir, datasetMetaFile))
	if err != nil {
		return nil, fmt.Errorf("leodivide: reading metadata: %w", err)
	}
	var meta datasetMeta
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return nil, fmt.Errorf("leodivide: parsing metadata: %w", err)
	}
	res := hexgrid.Resolution(meta.Resolution)
	if !res.Valid() {
		return nil, fmt.Errorf("leodivide: invalid resolution %d in metadata", meta.Resolution)
	}

	cellsFile, err := os.Open(filepath.Join(dir, datasetCellsFile))
	if err != nil {
		return nil, err
	}
	defer cellsFile.Close()
	cells, err := bdc.ReadCellsCSV(cellsFile)
	if err != nil {
		return nil, err
	}
	if len(cells) != meta.Cells {
		return nil, fmt.Errorf("leodivide: %d cells on disk, metadata says %d", len(cells), meta.Cells)
	}

	incomesFile, err := os.Open(filepath.Join(dir, datasetIncomesFile))
	if err != nil {
		return nil, err
	}
	defer incomesFile.Close()
	incomes, err := census.ReadCSV(incomesFile)
	if err != nil {
		return nil, err
	}

	dist, err := demand.NewDistribution(cells)
	if err != nil {
		return nil, err
	}
	if dist.TotalLocations() != meta.Locations {
		return nil, fmt.Errorf("leodivide: %d locations on disk, metadata says %d",
			dist.TotalLocations(), meta.Locations)
	}
	return &Dataset{
		Cells:      cells,
		Incomes:    incomes,
		Resolution: res,
		Seed:       meta.Seed,
		dist:       dist,
	}, nil
}
