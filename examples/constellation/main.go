// Constellation: a LEO constellation designer working the paper's model
// in reverse — given a target service level for the US un(der)served
// population and a regulator-acceptable oversubscription, find the
// cheapest (smallest) constellation across beamspread factors, then
// sanity-check the coverage geometry with the time-stepped simulator.
package main

import (
	"context"
	"fmt"
	"log"

	"leodivide"
	"leodivide/internal/core"
	"leodivide/internal/sim"
)

func main() {
	ctx := context.Background()
	ds, err := leodivide.GenerateDataset(ctx, leodivide.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	m := leodivide.NewModel()
	dist := ds.Distribution()

	fmt.Println("design space: constellation size by beamspread, capped at 20:1 oversubscription")
	fmt.Println("(larger beamspread = fewer satellites but less capacity per cell)")
	fmt.Println()

	type candidate struct {
		spread   float64
		sats     int
		fraction float64
	}
	var best *candidate
	const targetServed = 0.998 // serve at least 99.8% of locations
	for _, spread := range []float64{1, 2, 3, 5, 8, 10, 12, 15} {
		res := m.Capacity.Size(dist, core.CappedOversub, spread, m.MaxOversub)
		served := 1 - float64(res.UnservedLocations)/float64(dist.TotalLocations())
		marker := " "
		if served >= targetServed {
			if best == nil || res.Satellites < best.sats {
				best = &candidate{spread: spread, sats: res.Satellites, fraction: served}
			}
			marker = "*"
		}
		fmt.Printf("%s beamspread %4.0f: %6d satellites, %.3f%% of locations served, binding cell at %.1f deg lat\n",
			marker, spread, res.Satellites, 100*served, res.BindingCell.Center.Lat)
	}
	if best == nil {
		log.Fatal("no design meets the service target")
	}
	fmt.Printf("\nchosen design: beamspread %.0f with %d satellites (%.3f%% served)\n\n",
		best.spread, best.sats, 100*best.fraction)

	// Cross-check with the simulator: does a Walker shell of roughly
	// the deployed size actually keep the demand cells in view? We
	// simulate the real first shell (72x22) and report coverage.
	cfg := sim.DefaultConfig()
	cfg.Spread = best.spread
	cfg.Oversub = m.MaxOversub
	cfg.Epochs = 8
	res, err := sim.Run(ctx, cfg, ds.Cells)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulator check (Walker 53 deg, %d sats, one-shell snapshot coverage):\n", cfg.Shell.Total)
	fmt.Printf("  mean visible satellites per demand cell: %.1f\n", res.MeanVisibleSats)
	fmt.Printf("  demand cells with at least one satellite in view: %.2f%% (min %.2f%%)\n",
		100*res.MeanCoveredFraction, 100*res.MinCoveredFraction)
	fmt.Printf("  demand cells whose beam requirement was met:      %.2f%% (min %.2f%%)\n",
		100*res.MeanServedFraction, 100*res.MinServedFraction)
	fmt.Println("\nnote: one 1,584-satellite shell keeps cells in view but cannot satisfy")
	fmt.Println("every cell's beam requirement — the gap the paper's Table 2 quantifies.")
}
