// Ruralisp: a state broadband office evaluating LEO service for one
// state's un(der)served locations — the workload the paper's
// introduction motivates (recent US regulatory proposals would allow
// BEAD-style funding to flow to LEO constellations instead of
// terrestrial builds).
//
// For a chosen state the example reports: the state's demand profile,
// the oversubscription its densest cell would see, what fraction of the
// state's cells today's constellation could serve at regulator-
// acceptable oversubscription, and whether households could afford the
// service with and without Lifeline.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"

	"leodivide"
	"leodivide/internal/afford"
	"leodivide/internal/census"
	"leodivide/internal/demand"
	"leodivide/internal/usgeo"
)

func main() {
	state := flag.String("state", "WV", "USPS state abbreviation to analyse")
	flag.Parse()

	st, err := usgeo.ByAbbr(*state)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	ds, err := leodivide.GenerateDataset(ctx, leodivide.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}

	// Filter the national dataset to the state's cells.
	var cells []demand.Cell
	for _, c := range ds.Cells {
		if s, ok := usgeo.StateAt(c.Center); ok && s.Abbr == st.Abbr {
			cells = append(cells, c)
		}
	}
	if len(cells) == 0 {
		log.Fatalf("no demand cells found in %s", st.Name)
	}
	dist, err := demand.NewDistribution(cells)
	if err != nil {
		log.Fatal(err)
	}

	m := leodivide.NewModel()
	fmt.Printf("%s: %d un(der)served locations across %d service cells\n",
		st.Name, dist.TotalLocations(), dist.NumCells())

	sum, err := dist.Summary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cell density: median %.0f, p90 %.0f, max %d locations/cell\n\n",
		sum.Median, sum.P90, dist.Peak().Locations)

	// Capacity view: what oversubscription the densest cell forces, and
	// the served fraction at the FCC fixed-wireless cap.
	o := m.Capacity.Oversubscription(dist, m.MaxOversub)
	fmt.Printf("densest cell needs %.1f:1 oversubscription for full 100/20 service\n", o.RequiredOversub)
	fmt.Printf("at %g:1, %.3f%% of the state's locations are servable (%d left out)\n\n",
		o.MaxOversub, 100*o.ServedFractionAtCap, o.ExcessLocations)

	// How much of the state a single spread beam per cell serves, at a
	// few beamspread factors (the current-constellation regime).
	fmt.Println("fraction of state cells servable with one spread beam per cell:")
	grid, err := m.Capacity.ServedFractionGrid(ctx, dist, []float64{2, 5, 10}, []float64{m.MaxOversub}, false)
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range []float64{2, 5, 10} {
		fmt.Printf("  beamspread %2.0f: %.1f%%\n", s, 100*grid[i][0])
	}
	fmt.Println()

	// Affordability within the state: collect county weights and
	// incomes from the national table.
	in, err := stateAffordability(ds, cells)
	if err != nil {
		log.Fatal(err)
	}
	for _, opt := range afford.PaperComparison() {
		r := in.Evaluate(opt.Plan, opt.Subsidy, m.AffordShare)
		name := opt.Plan.Name
		if opt.Subsidy != nil {
			name += " w/ " + opt.Subsidy.Name
		}
		fmt.Printf("%-38s $%6.2f/mo -> %6.0f of %.0f locations unaffordable (%.1f%%)\n",
			name, afford.EffectiveMonthlyUSD(opt.Plan, opt.Subsidy),
			r.UnaffordableLocations, in.TotalLocations(), 100*r.UnaffordableFraction)
	}
}

// stateAffordability builds an affordability input restricted to the
// given cells' counties, weighted by their location counts.
func stateAffordability(ds *leodivide.Dataset, cells []demand.Cell) (*afford.Input, error) {
	weights := make(map[string]float64)
	for _, c := range cells {
		weights[c.CountyFIPS] += float64(c.Locations)
	}
	fips := make([]string, 0, len(weights))
	for f := range weights {
		fips = append(fips, f)
	}
	sort.Strings(fips)
	recs := make([]census.CountyIncome, 0, len(fips))
	for _, f := range fips {
		rec, ok := ds.Incomes.Lookup(f)
		if !ok {
			continue
		}
		rec.Weight = weights[f]
		recs = append(recs, rec)
	}
	return afford.NewInput(census.NewTable(recs))
}
