// Backbone: the constellation as a long-haul network. Routes traffic
// between city pairs over the +Grid inter-satellite links and compares
// against the bent-pipe and fiber alternatives — the "LEO as transit"
// capability that frees satellites from the gateway constraint the
// paper describes ("indirectly via inter-satellite link").
package main

import (
	"fmt"
	"log"

	"leodivide/internal/geo"
	"leodivide/internal/orbit"
)

func main() {
	shell := orbit.StarlinkShell1()
	grid, err := shell.ISLGrid()
	if err != nil {
		log.Fatal(err)
	}
	stats, err := grid.Stats(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shell: %d satellites, +Grid ISLs\n", shell.Total)
	fmt.Printf("in-plane link: %.0f km; cross-plane links: %.0f-%.0f km\n\n",
		stats.InPlaneKm, stats.CrossPlaneMinKm, stats.CrossPlaneMaxKm)

	pairs := []struct {
		name string
		a, b geo.LatLng
	}{
		{"New York - Los Angeles", geo.LatLng{Lat: 40.7, Lng: -74.0}, geo.LatLng{Lat: 34.1, Lng: -118.2}},
		{"Seattle - Miami", geo.LatLng{Lat: 47.6, Lng: -122.3}, geo.LatLng{Lat: 25.8, Lng: -80.2}},
		{"New York - London", geo.LatLng{Lat: 40.7, Lng: -74.0}, geo.LatLng{Lat: 51.5, Lng: -0.1}},
		{"Los Angeles - Tokyo", geo.LatLng{Lat: 34.1, Lng: -118.2}, geo.LatLng{Lat: 35.7, Lng: 139.7}},
	}
	fmt.Printf("%-24s %9s %6s %9s %9s %9s\n",
		"route", "geodesic", "hops", "ISL path", "ISL 1-way", "fiber*")
	for _, p := range pairs {
		gc := geo.DistanceKm(p.a, p.b)
		path, err := grid.Route(p.a, p.b, 25, 0)
		if err != nil {
			fmt.Printf("%-24s %8.0fkm  (no coverage: %v)\n", p.name, gc, err)
			continue
		}
		// Terrestrial fiber reference: geodesic × 1.5 route stretch at
		// 2/3 c (refractive index).
		fiberMs := gc * 1.5 / (orbit.SpeedOfLightKmPerSec * 2 / 3) * 1000
		fmt.Printf("%-24s %8.0fkm %6d %8.0fkm %8.1fms %8.1fms\n",
			p.name, gc, path.Hops, path.PathKm, path.OneWayMs, fiberMs)
	}
	fmt.Println("\n* fiber assumes 1.5x route stretch at 2/3 c. In this +Grid the")
	fmt.Println("  minimum-distance ISL paths still trail good direct fiber — the ISL")
	fmt.Println("  advantage materializes on routes without direct fiber, and the grid")
	fmt.Println("  frees satellites from the bent-pipe gateway constraint either way.")

	fmt.Printf("\nlatency floors: LEO bent-pipe %.1f ms RTT, GEO %.0f ms RTT\n",
		orbit.MinBentPipeRTTMs(shell.AltitudeKm), orbit.GEOBentPipeRTTMs())
}
