// Quickstart: generate the calibrated national dataset, run the paper's
// core analysis end-to-end, and print the four findings.
package main

import (
	"context"
	"fmt"
	"log"

	"leodivide"
)

func main() {
	ctx := context.Background()
	// The dataset is the synthetic National Broadband Map: ~4.67M
	// un(der)served locations aggregated into ~27k service cells, with
	// county median incomes attached.
	ds, err := leodivide.GenerateDataset(ctx, leodivide.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d un(der)served locations in %d service cells\n\n",
		ds.TotalLocations(), ds.NumCells())

	m := leodivide.NewModel()

	// Table 1: what one satellite can deliver to one cell.
	t1, err := m.Table1(ctx, ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-satellite capacity: %.1f Gbps per cell (%.0f MHz x %.1f b/Hz)\n",
		t1.MaxCellCapacityGbps, t1.UTDownlinkMHz, t1.SpectralEfficiencyBpsPerHz)
	fmt.Printf("peak cell: %d locations demanding %.1f Gbps -> %.1f:1 oversubscription for full service\n\n",
		t1.PeakCellLocations, t1.PeakCellDemandGbps, t1.MaxOversubscription)

	// Table 2: how many satellites universal service takes.
	t2, err := m.Table2(ctx, ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("constellation size by beamspread factor (full service / capped 20:1):")
	for _, row := range t2.Rows {
		fmt.Printf("  beamspread %2.0f: %6d / %6d satellites\n",
			row.Spread, row.FullServiceSats, row.CappedOversubSats)
	}
	fmt.Println()

	// The findings.
	f, err := m.RunFindings(ctx, ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("F1: %.2f%% of locations servable within a %g:1 oversubscription cap\n",
		100*f.F1.ServedFractionAtCap, f.F1.MaxOversub)
	fmt.Printf("F2: %d satellites needed at beamspread 2 vs ~%d deployed today\n",
		f.F2SatellitesAtSpread2, f.F2CurrentConstellation)
	if len(f.F3) > 0 {
		last := f.F3[len(f.F3)-1]
		fmt.Printf("F3: the last %d servable locations cost %d additional satellites\n",
			last.LocationsGained, last.AdditionalSatellites)
	}
	fmt.Printf("F4: %.1fM locations (%.1f%%) cannot afford Starlink Residential at 2%% of income\n",
		f.F4Unaffordable/1e6, 100*f.F4UnaffordableFraction)
}
