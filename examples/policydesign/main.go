// Policydesign: how large would a monthly broadband subsidy need to be
// to close the affordability gap the paper identifies?
//
// The paper finds that even with the $9.25 Lifeline subsidy, ~3M
// un(der)served locations cannot afford Starlink Residential under the
// 2%-of-income benchmark. This example sweeps subsidy levels and solves
// for the subsidy required to reach coverage targets — the kind of
// question a universal-service fund designer would ask.
package main

import (
	"context"
	"fmt"
	"log"

	"leodivide"
	"leodivide/internal/afford"
)

func main() {
	ds, err := leodivide.GenerateDataset(context.Background(), leodivide.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	m := leodivide.NewModel()
	in, err := m.AffordabilityInput(ds)
	if err != nil {
		log.Fatal(err)
	}

	plan := afford.StarlinkResidential()
	fmt.Printf("plan: %s at $%.0f/month; affordability threshold %.0f%% of monthly income\n\n",
		plan.Name, plan.MonthlyUSD, 100*m.AffordShare)

	// Sweep subsidy levels, anchored by the two real federal programs:
	// Lifeline ($9.25, still running) and the lapsed ACP ($30).
	fmt.Println("monthly subsidy -> locations still unable to afford:")
	lifeline, acp := afford.Lifeline(), afford.ACP()
	for _, s := range []afford.Subsidy{
		{Name: "none", MonthlyUSD: 0}, lifeline, {Name: "candidate", MonthlyUSD: 20},
		acp, {Name: "candidate", MonthlyUSD: 40}, {Name: "candidate", MonthlyUSD: 50},
		{Name: "candidate", MonthlyUSD: 60}, {Name: "candidate", MonthlyUSD: 70},
	} {
		s := s
		r := in.Evaluate(plan, &s, m.AffordShare)
		fmt.Printf("  $%6.2f (%-9s) -> %9.0f locations (%.1f%%)\n",
			s.MonthlyUSD, s.Name, r.UnaffordableLocations, 100*r.UnaffordableFraction)
	}
	fmt.Println()

	// Solve for the subsidy meeting coverage targets.
	fmt.Println("subsidy required for affordability coverage targets:")
	for _, target := range []float64{0.50, 0.75, 0.90, 0.95, 0.99, 1.0} {
		need := in.SubsidyToAfford(plan, m.AffordShare, target)
		annual := need * 12 * in.TotalLocations() * target
		fmt.Printf("  %5.1f%% of locations -> $%.2f/month (~$%.1fB/year if all enrolled)\n",
			100*target, need, annual/1e9)
	}
	fmt.Println()

	// Contrast: the terrestrial plans are already affordable nearly
	// everywhere they exist — the paper's point that the gap is a
	// price gap, not only a coverage gap.
	for _, opt := range []afford.Plan{afford.Xfinity300(), afford.SpectrumPremier()} {
		r := in.Evaluate(opt, nil, m.AffordShare)
		fmt.Printf("%s at $%.0f/mo: %.4f%% unaffordable without any subsidy\n",
			opt.Name, opt.MonthlyUSD, 100*r.UnaffordableFraction)
	}
}
