// Terminal: what a single user terminal experiences — the "anyone,
// anywhere" half of the paper's title. For a chosen location, predict
// satellite passes, visibility statistics under the real first shell,
// and the link budget / achievable throughput, including the far-north
// locations where even "anywhere" fails.
package main

import (
	"flag"
	"fmt"
	"log"

	"leodivide/internal/geo"
	"leodivide/internal/linkbudget"
	"leodivide/internal/orbit"
)

func main() {
	lat := flag.Float64("lat", 35.5, "terminal latitude")
	lng := flag.Float64("lng", -106.3, "terminal longitude")
	mask := flag.Float64("mask", 25, "elevation mask in degrees")
	flag.Parse()

	ground := geo.LatLng{Lat: *lat, Lng: *lng}
	shell := orbit.StarlinkShell1()
	fmt.Printf("terminal at %v under a %d-satellite %g° shell (mask %g°)\n\n",
		ground, shell.Total, shell.InclinationDeg, *mask)

	// Constellation-level visibility.
	stats, err := shell.GroundCoverage(ground, *mask, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("satellites in view: min %d, mean %.1f, max %d\n",
		stats.VisibleMin, stats.VisibleMean, stats.VisibleMax)
	fmt.Printf("epochs with no coverage: %.1f%%\n", 100*stats.OutageFraction)
	//lint:ignore floatcmp OutageFraction is outages/epochs, exactly 1.0 iff every epoch is an outage; display-only branch
	if stats.OutageFraction == 1 {
		fmt.Println("\nthis location is beyond the shell's coverage — the paper's")
		fmt.Println("\"anyone, anywhere\" promise already fails here (e.g. northern Alaska).")
		return
	}
	fmt.Printf("mean best elevation: %.1f°\n\n", stats.MeanBestElevationDeg)

	// Single-satellite pass prediction for the first orbit of the
	// shell's first plane.
	orbits, err := shell.Orbits()
	if err != nil {
		log.Fatal(err)
	}
	passes, err := orbits[0].Passes(ground, *mask, 24*3600, 15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("passes of one satellite over 24h: %d\n", len(passes))
	for i, p := range passes {
		if i >= 4 {
			fmt.Printf("  ... and %d more\n", len(passes)-4)
			break
		}
		fmt.Printf("  t+%6.0fs for %3.0fs, culminating at %4.1f°\n",
			p.StartSec, p.Duration(), p.MaxElevationDeg)
	}

	// Link budget at the mean best elevation.
	budget := linkbudget.StarlinkKuDownlink()
	el := stats.MeanBestElevationDeg
	fmt.Printf("\nlink budget at the typical %.0f° elevation:\n", el)
	for _, line := range budget.Breakdown(el) {
		fmt.Printf("  %-22s %9.2f %s\n", line.Item, line.Value, line.Unit)
	}
	eff, err := budget.MeanEfficiency(*mask)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nelevation-weighted spectral efficiency: %.2f b/Hz (the paper adopts ~4.5)\n", eff)
	// A beam carries a quarter of the 3,850 MHz UT downlink spectrum.
	const beamSpectrumMHz = 3850.0 / 4
	fmt.Printf("a dedicated beam (%.1f MHz of UT spectrum) would deliver ≈%.2f Gbps to this cell (paper's beam: 4.33 Gbps)\n",
		beamSpectrumMHz, eff*beamSpectrumMHz/1000)
}
