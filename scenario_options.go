package leodivide

// The validated functional-options constructor for ScenarioConfig.
// NewScenarioConfig is the preferred construction path: it normalizes
// (materializing every defaulted knob) and validates before returning,
// so a config it hands out is always runnable and canonical-key-ready.
// The struct-literal + DefaultScenarioConfig path keeps working but is
// deprecated in the docs: it defers validation to first use and leaves
// defaults implicit.

// ScenarioOption adjusts one knob of a ScenarioConfig under
// construction.
type ScenarioOption func(*ScenarioConfig)

// NewScenarioConfig builds a normalized, validated scenario for the
// named experiment:
//
//	cfg, err := leodivide.NewScenarioConfig("xconst",
//	    leodivide.WithConstellation("kuiper"),
//	    leodivide.WithOversub(25),
//	)
//
// Options apply in order (later wins); the result has every defaulted
// knob materialized, so its canonical key and BuildModel are stable
// regardless of which options were spelled out.
func NewScenarioConfig(experiment string, opts ...ScenarioOption) (ScenarioConfig, error) {
	c := DefaultScenarioConfig(experiment)
	for _, opt := range opts {
		opt(&c)
	}
	c = c.Normalized()
	if err := c.Validate(); err != nil {
		return ScenarioConfig{}, err
	}
	return c, nil
}

// WithConstellation selects the constellation system by canonical key
// ("starlink", "starlink-gen2", "kuiper", "oneweb").
func WithConstellation(name string) ScenarioOption {
	return func(c *ScenarioConfig) { c.Constellation = name }
}

// WithScenarioRegion selects the demand/income geography by canonical
// key ("us", "brazil-rural", "taipei-dense"). The name avoids
// colliding with WithRegion, the dataset-generation option that
// configures GenerateDataset directly.
func WithScenarioRegion(key string) ScenarioOption {
	return func(c *ScenarioConfig) { c.Region = key }
}

// WithOversub sets the acceptable oversubscription cap.
func WithOversub(maxOversub float64) ScenarioOption {
	return func(c *ScenarioConfig) { c.MaxOversub = maxOversub }
}

// WithAffordShare sets the affordability threshold as a share of
// monthly income.
func WithAffordShare(share float64) ScenarioOption {
	return func(c *ScenarioConfig) { c.AffordShare = share }
}

// WithSpreads sets the beamspread factors Fig3 evaluates (strictly
// ascending).
func WithSpreads(spreads ...float64) ScenarioOption {
	return func(c *ScenarioConfig) { c.Spreads = spreads }
}

// WithPlans restricts the Fig4 comparison to the named plan labels.
func WithPlans(plans ...string) ScenarioOption {
	return func(c *ScenarioConfig) { c.Plans = plans }
}

// WithCalibrated pins constellation sizing to the paper's fitted
// effective cell count.
func WithCalibrated(on bool) ScenarioOption {
	return func(c *ScenarioConfig) { c.Calibrated = on }
}

// WithRunConfig replaces the embedded dataset identity (seed, scale,
// parallelism, calibration) wholesale. The name avoids colliding with
// the dataset-generation options WithSeed/WithScale/WithParallelism,
// which configure Generate rather than a scenario.
func WithRunConfig(rc RunConfig) ScenarioOption {
	return func(c *ScenarioConfig) { c.RunConfig = rc }
}

// WithSatelliteCostUSD overrides the selected system's all-in
// (build+launch) satellite cost.
func WithSatelliteCostUSD(usd float64) ScenarioOption {
	return func(c *ScenarioConfig) { c.CostSatelliteUSD = usd }
}

// WithDesignLifeYears overrides the selected system's satellite design
// life.
func WithDesignLifeYears(years float64) ScenarioOption {
	return func(c *ScenarioConfig) { c.CostLifeYears = years }
}

// WithTerminalCostUSD overrides the selected system's per-subscriber
// terminal subsidy.
func WithTerminalCostUSD(usd float64) ScenarioOption {
	return func(c *ScenarioConfig) { c.CostTerminalUSD = usd }
}
