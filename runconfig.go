package leodivide

// RunConfig and RunAs: the unified entry points for standing up and
// running the experiment pipeline. Library consumers, the CLI and the
// bench harness all construct their (Model, Dataset) pair from the same
// option set, so the parallelism knob, the seed and the scale cannot
// drift between surfaces.

import (
	"context"
	"fmt"
	"math"

	"leodivide/internal/scenario"
)

// RunConfig is the one shared option set for standing up the pipeline.
// It carries every knob that all three surfaces (library, CLI, bench
// harness) agree on; zero value aside, obtain it from DefaultRunConfig.
//
// Parallelism is the single coherent worker bound: BuildModel routes it
// through Model.Parallelism (facade fan-outs and capacity sweeps in
// lockstep) and Generate routes it through WithParallelism, so one
// field controls every pool in the pipeline. Output is identical at
// every setting.
type RunConfig struct {
	// Seed reproduces the dataset (default 1).
	Seed int64
	// Scale shrinks the dataset to this fraction of the national total,
	// in (0, 1] (default 1).
	Scale float64
	// Parallelism bounds worker counts everywhere: 0 = one worker per
	// CPU, 1 = the exact serial path.
	Parallelism int
	// Calibrated pins constellation sizing to the paper's fitted
	// effective cell count (Model.Calibrated).
	Calibrated bool
}

// DefaultRunConfig returns the paper's configuration: seed 1, full
// scale, one worker per CPU, uncalibrated.
func DefaultRunConfig() RunConfig {
	return RunConfig{Seed: 1, Scale: 1}
}

// Validate reports whether the configuration is usable. Scale must be
// a finite value in (0, 1]: NaN fails both ordered comparisons, so it
// is rejected explicitly rather than slipping through the range check.
func (c RunConfig) Validate() error {
	if math.IsNaN(c.Scale) || math.IsInf(c.Scale, 0) {
		return fmt.Errorf("leodivide: scale must be finite, got %v", c.Scale)
	}
	if c.Scale <= 0 || c.Scale > 1 {
		return fmt.Errorf("leodivide: scale must be in (0,1], got %v", c.Scale)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("leodivide: parallelism must be >= 0, got %d", c.Parallelism)
	}
	return nil
}

// String renders the canonical human-readable form of the
// configuration. The scale is formatted exactly as the scenario cache
// key and the golden-corpus directory names format it
// (strconv 'g'/-1), so a config printed in a log line can be matched
// against a cache key or corpus path by eye.
func (c RunConfig) String() string {
	return fmt.Sprintf("seed=%d scale=%s parallelism=%d calibrated=%t",
		c.Seed, scenario.FormatFloat(c.Scale), c.Parallelism, c.Calibrated)
}

// BuildModel constructs the model this configuration describes.
func (c RunConfig) BuildModel() Model {
	m := NewModel().Parallelism(c.Parallelism)
	if c.Calibrated {
		m = m.Calibrated()
	}
	return m
}

// Generate synthesizes the dataset this configuration describes.
func (c RunConfig) Generate(ctx context.Context) (*Dataset, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return GenerateDataset(ctx,
		WithSeed(c.Seed), WithScale(c.Scale), WithParallelism(c.Parallelism))
}

// RunAs runs the named registry experiment and returns its result as T,
// so callers get compile-time typed results from the string-keyed
// registry instead of type-switching on any:
//
//	t2, err := leodivide.RunAs[leodivide.Table2Result](ctx, m, ds, "table2")
//
// An unknown name or a result of a different concrete type is an error.
func RunAs[T any](ctx context.Context, m Model, d *Dataset, name string) (T, error) {
	var zero T
	exp, ok := m.ExperimentByName(name)
	if !ok {
		return zero, fmt.Errorf("leodivide: unknown experiment %q", name)
	}
	v, err := exp.Run(ctx, d)
	if err != nil {
		return zero, err
	}
	t, ok := v.(T)
	if !ok {
		return zero, fmt.Errorf("leodivide: experiment %q returned %T, not %T", name, v, zero)
	}
	return t, nil
}
