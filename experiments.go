package leodivide

// The experiment registry: one authoritative list of every runner the
// facade exposes, so the CLI, library consumers and documentation can
// enumerate the same set and none can drift. Each entry wraps a typed
// Model method in the uniform (ctx, *Dataset) (any, error) shape; the
// typed methods remain the primary API for programmatic use.

import "context"

// Experiment is one named, runnable experiment of the pipeline.
type Experiment struct {
	// Name is the registry key, matching the CLI subcommand.
	Name string
	// Description is a one-line summary shown by `leodivide experiments`.
	Description string
	// Run evaluates the experiment. The concrete result type is the
	// corresponding Model method's result (e.g. Table2Result for
	// "table2").
	Run func(ctx context.Context, d *Dataset) (any, error)
}

// Experiments returns the registry of the model's experiment runners in
// presentation order. Every entry delegates to the uniform
// (ctx, *Dataset) (Result, error) methods, so cancellation and the
// Parallelism knob apply uniformly.
func (m Model) Experiments() []Experiment {
	return []Experiment{
		{
			Name:        "fig1",
			Description: "per-cell density distribution (Figure 1)",
			Run: func(ctx context.Context, d *Dataset) (any, error) {
				return m.Fig1(ctx, d)
			},
		},
		{
			Name:        "table1",
			Description: "single-satellite capacity model (Table 1)",
			Run: func(ctx context.Context, d *Dataset) (any, error) {
				return m.Table1(ctx, d)
			},
		},
		{
			Name:        "table2",
			Description: "constellation sizing vs beamspread (Table 2)",
			Run: func(ctx context.Context, d *Dataset) (any, error) {
				return m.Table2(ctx, d)
			},
		},
		{
			Name:        "fig2",
			Description: "beamspread × oversubscription served fraction (Figure 2)",
			Run: func(ctx context.Context, d *Dataset) (any, error) {
				return m.Fig2(ctx, d)
			},
		},
		{
			Name:        "fig3",
			Description: "diminishing returns over the demand tail (Figure 3)",
			Run: func(ctx context.Context, d *Dataset) (any, error) {
				return m.Fig3(ctx, d)
			},
		},
		{
			Name:        "fig4",
			Description: "affordability at 2% of income (Figure 4)",
			Run: func(ctx context.Context, d *Dataset) (any, error) {
				return m.Fig4(ctx, d)
			},
		},
		{
			Name:        "findings",
			Description: "the paper's four findings (F1–F4)",
			Run: func(ctx context.Context, d *Dataset) (any, error) {
				return m.RunFindings(ctx, d)
			},
		},
		{
			Name:        "fleets",
			Description: "assess the authorized Gen1/Gen2 fleets against the requirement",
			Run: func(ctx context.Context, d *Dataset) (any, error) {
				return m.AssessFleets(ctx, d)
			},
		},
		{
			Name:        "refined",
			Description: "affordability with income dispersion and Lifeline eligibility",
			Run: func(ctx context.Context, d *Dataset) (any, error) {
				return m.Fig4Refined(ctx, d, 0, 3)
			},
		},
		{
			Name:        "busyhour",
			Description: "diurnal demand: staggering and busy-hour throughput",
			Run: func(ctx context.Context, d *Dataset) (any, error) {
				return m.BusyHour(ctx, d)
			},
		},
		{
			Name:        "econ",
			Description: "constellation economics: capex and per-location cost",
			Run: func(ctx context.Context, d *Dataset) (any, error) {
				return m.Economics(ctx, d)
			},
		},
	}
}

// ExperimentByName looks an experiment up in the registry.
func (m Model) ExperimentByName(name string) (Experiment, bool) {
	for _, e := range m.Experiments() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}
