package leodivide

// The experiment registry: one authoritative list of every runner the
// facade exposes, so the CLI, library consumers and documentation can
// enumerate the same set and none can drift. Each entry wraps a typed
// Model method in the uniform (ctx, *Dataset) (any, error) shape; the
// typed methods remain the primary API for programmatic use.
//
// Every entry passes through instrument, which gives the whole
// registry two uniform properties:
//
//   - Observability: per-experiment run/error counters and duration
//     histograms in obs.Default, plus an "experiment.<name>" span
//     (carrying the JSON-encoded result size) when a span collector is
//     installed.
//   - Cancellation: Run returns ctx.Err() without touching the dataset
//     when the context is already cancelled at entry; long runners
//     additionally observe cancellation between fan-out stages.

import (
	"context"
	"encoding/json"
	"time"

	"leodivide/internal/obs"
)

// Experiment is one named, runnable experiment of the pipeline.
type Experiment struct {
	// Name is the registry key, matching the CLI subcommand.
	Name string
	// Description is a one-line summary shown by `leodivide experiments`.
	Description string
	// Run evaluates the experiment. The concrete result type is the
	// corresponding Model method's result (e.g. Table2Result for
	// "table2"); RunAs recovers it with type safety.
	//
	// Cancellation contract (uniform across the registry): if ctx is
	// already cancelled, Run returns ctx.Err() immediately without
	// touching the dataset; runners that fan out over multiple stages
	// also observe cancellation between stages. On any error the result
	// is nil — never a partial result.
	Run func(ctx context.Context, d *Dataset) (any, error)
}

// instrument wraps a registry runner with the uniform cancellation
// check and the observability layer. The instrument names and their
// get-or-create lookups are resolved once at wrap time, so a run — the
// unit the bench harness times — pays no name formatting or registry
// lookups of its own.
func instrument(name string, fn func(ctx context.Context, d *Dataset) (any, error)) func(ctx context.Context, d *Dataset) (any, error) {
	spanName := "experiment." + name
	seconds := obs.Default.Histogram(spanName+".seconds", obs.DurationBuckets)
	errorRuns := obs.Default.Counter(spanName + ".errors")
	okRuns := obs.Default.Counter(spanName + ".runs")
	return func(ctx context.Context, d *Dataset) (any, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ctx, span := obs.StartSpan(ctx, spanName)
		//lint:ignore detrand wall-clock feeds the experiment duration histogram only, never the result
		start := time.Now()
		v, err := fn(ctx, d)
		seconds.ObserveSince(start)
		if err != nil {
			errorRuns.Inc()
			v = nil // the contract: no partial results
		} else {
			okRuns.Inc()
		}
		if span != nil {
			if err != nil {
				span.SetAttr(obs.String("error", err.Error()))
			} else {
				span.SetAttr(obs.Int("result_bytes", resultBytes(v)))
			}
		}
		span.End()
		return v, err
	}
}

// resultBytes measures a result's JSON-encoded size without buffering
// it. Only called when a span collector is installed, so the encoding
// cost is opt-in.
func resultBytes(v any) int64 {
	var cw countingDiscard
	if err := json.NewEncoder(&cw).Encode(v); err != nil {
		return -1
	}
	return cw.n
}

type countingDiscard struct{ n int64 }

func (c *countingDiscard) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// Experiments returns the registry of the model's experiment runners in
// presentation order. Every entry delegates to the uniform
// (ctx, *Dataset) (Result, error) methods, so cancellation, the
// Parallelism knob and the observability layer apply uniformly.
func (m Model) Experiments() []Experiment {
	return []Experiment{
		{
			Name:        "fig1",
			Description: "per-cell density distribution (Figure 1)",
			Run: instrument("fig1", func(ctx context.Context, d *Dataset) (any, error) {
				return m.Fig1(ctx, d)
			}),
		},
		{
			Name:        "table1",
			Description: "single-satellite capacity model (Table 1)",
			Run: instrument("table1", func(ctx context.Context, d *Dataset) (any, error) {
				return m.Table1(ctx, d)
			}),
		},
		{
			Name:        "table2",
			Description: "constellation sizing vs beamspread (Table 2)",
			Run: instrument("table2", func(ctx context.Context, d *Dataset) (any, error) {
				return m.Table2(ctx, d)
			}),
		},
		{
			Name:        "fig2",
			Description: "beamspread × oversubscription served fraction (Figure 2)",
			Run: instrument("fig2", func(ctx context.Context, d *Dataset) (any, error) {
				return m.Fig2(ctx, d)
			}),
		},
		{
			Name:        "fig3",
			Description: "diminishing returns over the demand tail (Figure 3)",
			Run: instrument("fig3", func(ctx context.Context, d *Dataset) (any, error) {
				// No variadic override: the Fig3Spreads knob resolves
				// inside Fig3, through the same helper as direct calls.
				return m.Fig3(ctx, d)
			}),
		},
		{
			Name:        "fig4",
			Description: "affordability at 2% of income (Figure 4)",
			Run: instrument("fig4", func(ctx context.Context, d *Dataset) (any, error) {
				return m.Fig4(ctx, d)
			}),
		},
		{
			Name:        "findings",
			Description: "the paper's four findings (F1–F4)",
			Run: instrument("findings", func(ctx context.Context, d *Dataset) (any, error) {
				return m.RunFindings(ctx, d)
			}),
		},
		{
			Name:        "fleets",
			Description: "assess the authorized Gen1/Gen2 fleets against the requirement",
			Run: instrument("fleets", func(ctx context.Context, d *Dataset) (any, error) {
				return m.AssessFleets(ctx, d)
			}),
		},
		{
			Name:        "refined",
			Description: "affordability with income dispersion and Lifeline eligibility",
			Run: instrument("refined", func(ctx context.Context, d *Dataset) (any, error) {
				return m.Fig4Refined(ctx, d, 0, 3)
			}),
		},
		{
			Name:        "busyhour",
			Description: "diurnal demand: staggering and busy-hour throughput",
			Run: instrument("busyhour", func(ctx context.Context, d *Dataset) (any, error) {
				return m.BusyHour(ctx, d)
			}),
		},
		{
			Name:        "econ",
			Description: "constellation economics: capex and per-location cost",
			Run: instrument("econ", func(ctx context.Context, d *Dataset) (any, error) {
				return m.Economics(ctx, d)
			}),
		},
		{
			Name:        "costcurve",
			Description: "cost per served location and served fraction vs fleet size, per constellation",
			Run: instrument("costcurve", func(ctx context.Context, d *Dataset) (any, error) {
				return m.CostCurve(ctx, d)
			}),
		},
		{
			Name:        "xconst",
			Description: "which constellation closes the divide cheapest under the 100/20 benchmark",
			Run: instrument("xconst", func(ctx context.Context, d *Dataset) (any, error) {
				return m.CrossConstellation(ctx, d)
			}),
		},
		{
			Name:        "xregion",
			Description: "service fraction vs affordability per demand geography: which constraint binds where",
			Run: instrument("xregion", func(ctx context.Context, d *Dataset) (any, error) {
				return m.CrossRegion(ctx, d)
			}),
		},
	}
}

// ExperimentByName looks an experiment up in the registry.
func (m Model) ExperimentByName(name string) (Experiment, bool) {
	for _, e := range m.Experiments() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}
