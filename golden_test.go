package leodivide

// The golden-corpus regression gate. Every registered experiment's
// result is frozen as canonical JSON under testdata/golden/<seed>/<scale>/
// and replayed here at two seeds × two scales. Any semantic drift — a
// refactor that changes Table 2 sizing, a calibration constant nudged,
// a parallel fan-out that reorders a reduction — fails with a
// field-level path naming the experiment and value.
//
// Regenerate after an intentional model change with:
//
//	go test -run TestGoldenCorpus -update ./...
//
// and review the corpus diff like any other code change: the diff IS
// the semantic change, and it must be justified against the paper's
// anchors in the PR description.

import (
	"context"
	"flag"
	"fmt"
	"testing"

	"leodivide/internal/golden"
)

var update = flag.Bool("update", false, "rewrite the golden corpus from the current implementation")

// goldenRoot is the committed corpus location, shared with the
// `leodivide verify` subcommand.
const goldenRoot = "testdata/golden"

// goldenConfigs is the replay matrix: two seeds × two scales. The
// scales are small enough that the full 11-experiment replay stays in
// CI seconds, and two seeds are enough to catch seed-dependent drift
// (a constant folded wrongly shows at every seed; a generation change
// shows differently per seed).
func goldenConfigs() []golden.Config {
	var cfgs []golden.Config
	for _, seed := range []int64{1, 2} {
		for _, scale := range []float64{0.02, 0.05} {
			cfgs = append(cfgs, golden.Config{Seed: seed, Scale: scale})
		}
	}
	return cfgs
}

// goldenTolerance is the corpus comparison policy. The default 1e-9
// relative tolerance absorbs last-ulp float differences across Go
// toolchain versions while still pinning every anchor to nine
// significant digits; integer fields (satellite counts, cell maxima,
// location totals) compare exactly because their JSON encodings are
// string-identical.
func goldenTolerance() golden.Tolerance {
	return golden.Default()
}

func TestGoldenCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("golden corpus replay is not a -short test")
	}
	ctx := context.Background()
	for _, cfg := range goldenConfigs() {
		cfg := cfg
		t.Run(fmt.Sprintf("seed=%d/scale=%s", cfg.Seed, golden.FormatScale(cfg.Scale)), func(t *testing.T) {
			rc := DefaultRunConfig()
			rc.Seed = cfg.Seed
			rc.Scale = cfg.Scale
			ds, err := rc.Generate(ctx)
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			m := rc.BuildModel()
			for _, exp := range m.Experiments() {
				exp := exp
				t.Run(exp.Name, func(t *testing.T) {
					v, err := exp.Run(ctx, ds)
					if err != nil {
						t.Fatalf("run: %v", err)
					}
					path := golden.File(goldenRoot, cfg.Seed, cfg.Scale, exp.Name)
					if *update {
						if err := golden.WriteFile(ctx, path, v); err != nil {
							t.Fatalf("update corpus: %v", err)
						}
						return
					}
					want, err := golden.ReadFile(path)
					if err != nil {
						t.Fatalf("read corpus %s: %v\n(run `go test -run TestGoldenCorpus -update ./...` to create it)", path, err)
					}
					got, err := golden.Encode(v)
					if err != nil {
						t.Fatalf("encode result: %v", err)
					}
					diffs, err := golden.Compare(got, want, goldenTolerance())
					if err != nil {
						t.Fatalf("compare against %s: %v", path, err)
					}
					for i, d := range diffs {
						if i >= 10 {
							t.Errorf("... and %d more field diffs", len(diffs)-i)
							break
						}
						t.Errorf("%s drifted at %s", exp.Name, d)
					}
					if len(diffs) > 0 {
						t.Fatalf("%s: %d field(s) drifted from %s\n(if the change is intentional, regenerate with -update and justify the corpus diff)", exp.Name, len(diffs), path)
					}
				})
			}
		})
	}
}

// goldenRegionRoot holds the per-region findings corpus: one root per
// synthetic region (golden.Configs wants integer seed directories
// directly under its root), each replayed at the same seed × scale
// matrix as the main corpus. The US region needs no entry here — the
// main corpus already freezes every experiment on the US geography.
const goldenRegionRoot = "testdata/golden-regions"

// goldenRegionKeys are the synthetic geographies with frozen findings.
func goldenRegionKeys() []string { return []string{"brazil-rural", "taipei-dense"} }

// TestGoldenRegionCorpus freezes the findings experiment per synthetic
// region: the one-page summary exercises the full pipeline (capacity,
// sizing, affordability) on each geography, so drift in any synthetic
// generation step or region dispatch shows here with a field path.
func TestGoldenRegionCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("golden corpus replay is not a -short test")
	}
	ctx := context.Background()
	for _, key := range goldenRegionKeys() {
		key := key
		for _, cfg := range goldenConfigs() {
			cfg := cfg
			t.Run(fmt.Sprintf("%s/seed=%d/scale=%s", key, cfg.Seed, golden.FormatScale(cfg.Scale)), func(t *testing.T) {
				ds, err := GenerateDataset(ctx,
					WithSeed(cfg.Seed), WithScale(cfg.Scale), WithRegion(key))
				if err != nil {
					t.Fatalf("generate: %v", err)
				}
				m := NewModel()
				exp, ok := m.ExperimentByName("findings")
				if !ok {
					t.Fatal("findings experiment not in registry")
				}
				v, err := exp.Run(ctx, ds)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				path := golden.File(goldenRegionRoot+"/"+key, cfg.Seed, cfg.Scale, "findings")
				if *update {
					if err := golden.WriteFile(ctx, path, v); err != nil {
						t.Fatalf("update corpus: %v", err)
					}
					return
				}
				want, err := golden.ReadFile(path)
				if err != nil {
					t.Fatalf("read corpus %s: %v\n(run `go test -run TestGoldenRegionCorpus -update ./...` to create it)", path, err)
				}
				got, err := golden.Encode(v)
				if err != nil {
					t.Fatalf("encode result: %v", err)
				}
				diffs, err := golden.Compare(got, want, goldenTolerance())
				if err != nil {
					t.Fatalf("compare against %s: %v", path, err)
				}
				for i, d := range diffs {
					if i >= 10 {
						t.Errorf("... and %d more field diffs", len(diffs)-i)
						break
					}
					t.Errorf("findings drifted at %s", d)
				}
				if len(diffs) > 0 {
					t.Fatalf("findings on %s: %d field(s) drifted from %s\n(if the change is intentional, regenerate with -update and justify the corpus diff)", key, len(diffs), path)
				}
			})
		}
	}
}

// TestGoldenCorpusCoversRegistry pins the corpus to the registry: every
// experiment must have a frozen file in every committed config, and the
// corpus must not carry files for experiments that no longer exist.
// This is what makes `leodivide verify` a complete gate rather than a
// best-effort one.
func TestGoldenCorpusCoversRegistry(t *testing.T) {
	if *update {
		t.Skip("corpus being rewritten")
	}
	cfgs, err := golden.Configs(goldenRoot)
	if err != nil {
		t.Fatalf("enumerate corpus: %v", err)
	}
	if len(cfgs) != len(goldenConfigs()) {
		t.Fatalf("corpus has %d configs, test matrix has %d — regenerate with -update", len(cfgs), len(goldenConfigs()))
	}
	registry := NewModel().Experiments()
	for _, cfg := range cfgs {
		names, err := golden.Experiments(cfg.Dir)
		if err != nil {
			t.Fatalf("enumerate %s: %v", cfg.Dir, err)
		}
		have := make(map[string]bool, len(names))
		for _, n := range names {
			have[n] = true
		}
		for _, exp := range registry {
			if !have[exp.Name] {
				t.Errorf("corpus %s missing experiment %q — regenerate with -update", cfg.Dir, exp.Name)
			}
			delete(have, exp.Name)
		}
		for n := range have {
			t.Errorf("corpus %s has file for unknown experiment %q — delete it", cfg.Dir, n)
		}
	}
}
