package leodivide_test

import (
	"context"
	"fmt"
	"log"

	"leodivide"
)

// The calibrated dataset reproduces every statistic the paper publishes
// about the National Broadband Map.
func Example_quickstart() {
	ds, err := leodivide.GenerateDataset(context.Background(), leodivide.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	m := leodivide.NewModel()

	t1, err := m.Table1(context.Background(), ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("peak cell locations:", t1.PeakCellLocations)
	fmt.Printf("peak demand: %.1f Gbps over %.1f Gbps capacity\n",
		t1.PeakCellDemandGbps, t1.MaxCellCapacityGbps)

	f1, err := m.Finding1(context.Background(), ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("locations unservable at 20:1:", f1.ExcessLocations)
	// Output:
	// peak cell locations: 5998
	// peak demand: 599.8 Gbps over 17.3 Gbps capacity
	// locations unservable at 20:1: 5128
}

// Calibrated sizing reproduces the paper's Table 2 within rounding.
func ExampleModel_Table2() {
	ds, err := leodivide.GenerateDataset(context.Background(), leodivide.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	t2, err := leodivide.NewModel().Calibrated().Table2(context.Background(), ds)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range t2.Rows {
		within := relDiff(row.FullServiceSats, t2.PaperFullService[row.Spread]) < 0.005
		fmt.Printf("beamspread %2.0f within 0.5%% of paper: %v\n", row.Spread, within)
	}
	// Output:
	// beamspread  1 within 0.5% of paper: true
	// beamspread  2 within 0.5% of paper: true
	// beamspread  5 within 0.5% of paper: true
	// beamspread 10 within 0.5% of paper: true
	// beamspread 15 within 0.5% of paper: true
}

// The affordability analysis reproduces Finding 4.
func ExampleModel_Fig4() {
	ds, err := leodivide.GenerateDataset(context.Background(), leodivide.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	f4, err := leodivide.NewModel().Fig4(context.Background(), ds)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range f4.Results {
		name := r.Plan.Name
		if r.Subsidy != nil {
			name += " + " + r.Subsidy.Name
		}
		fmt.Printf("%-34s unaffordable for %4.1f%%\n", name, 100*r.UnaffordableFraction)
	}
	// Output:
	// Xfinity 300                        unaffordable for  0.0%
	// Spectrum Internet Premier          unaffordable for  0.0%
	// Starlink Residential + Lifeline    unaffordable for 64.1%
	// Starlink Residential               unaffordable for 74.5%
}

func relDiff(a, b int) float64 {
	d := float64(a-b) / float64(b)
	if d < 0 {
		return -d
	}
	return d
}
