package leodivide

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestScenarioWireRoundTrip: a config rendered to wire form, parsed
// back strictly, and applied onto a default base reproduces the same
// canonical key — the contract that lets a query saved from the HTTP
// API replay byte-for-byte through the CLI's -scenario flag and back.
func TestScenarioWireRoundTrip(t *testing.T) {
	cfg, err := NewScenarioConfig("costcurve",
		WithConstellation("oneweb"), WithAffordShare(0.03), WithTerminalCostUSD(650))
	if err != nil {
		t.Fatal(err)
	}
	key, err := cfg.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(cfg.Request())
	if err != nil {
		t.Fatal(err)
	}
	req, err := ParseScenarioRequest(data)
	if err != nil {
		t.Fatalf("parse of own wire form: %v (body %s)", err, data)
	}
	got, err := req.Apply(ScenarioConfig{RunConfig: DefaultRunConfig()})
	if err != nil {
		t.Fatal(err)
	}
	gotKey, err := got.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if gotKey != key {
		t.Errorf("round-tripped key\n  %s\nwant\n  %s", gotKey, key)
	}
}

func TestScenarioRequestValidateSchema(t *testing.T) {
	base := ScenarioConfig{RunConfig: DefaultRunConfig()}

	// A v1 body without v2-only fields applies (onto the Starlink
	// default); declaring v1 while using v2-only fields is an error.
	v1 := ScenarioRequest{Schema: ScenarioSchemaV1, Experiment: "table2"}
	if _, err := v1.Apply(base); err != nil {
		t.Errorf("plain v1 request rejected: %v", err)
	}
	v1.Constellation = "kuiper"
	if _, err := v1.Apply(base); err == nil || !strings.Contains(err.Error(), "v2-only") {
		t.Errorf("v1 request with constellation returned %v, want v2-only rejection", err)
	}
	v1.Constellation = ""
	v1.CostSatelliteUSD = 2e6
	if _, err := v1.Apply(base); err == nil {
		t.Error("v1 request with a cost override should be rejected")
	}

	bad := ScenarioRequest{Schema: "nope/v9", Experiment: "table2"}
	if err := bad.ValidateSchema(); err == nil {
		t.Error("unknown schema accepted")
	}
}

func TestParseScenarioRequestStrict(t *testing.T) {
	if _, err := ParseScenarioRequest([]byte(`{"experiment":"table2","warp":9}`)); err == nil {
		t.Error("unknown wire field accepted")
	}
	if _, err := ParseScenarioRequest([]byte(`{"experiment":"table2"}{}`)); err == nil {
		t.Error("trailing data accepted")
	}
	if _, err := ParseScenarioRequest([]byte(`{"experiment":`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	req, err := ParseScenarioRequest([]byte(`{"experiment":"xconst","constellation":"kuiper","seed":7}`))
	if err != nil {
		t.Fatal(err)
	}
	if req.Experiment != "xconst" || req.Constellation != "kuiper" || req.Seed == nil || *req.Seed != 7 {
		t.Errorf("parsed request %+v lost fields", req)
	}
}
