module leodivide

go 1.22
