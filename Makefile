GO ?= go

.PHONY: build test race vet lint lint-ratchet bench bench-parallel bench-json bench-check \
	fmt check verify fuzz-smoke cover cover-check serve-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Project-specific determinism/hygiene analyzers (internal/analysis,
# DESIGN.md §11). Exits nonzero on any unsuppressed finding.
lint:
	$(GO) run ./cmd/leodivide-lint ./...

# The CI lint gate: full suite plus the suppression ratchet (the
# //lint:ignore count must equal LINT_SUPPRESSIONS exactly — spend the
# budget down in the same change that retires a suppression) and the
# committed wall-time ceiling. Writes the lint.json report artifact.
lint-ratchet:
	$(GO) run ./cmd/leodivide-lint -out lint.json \
		-ratchet LINT_SUPPRESSIONS -time-budget LINT_TIME_BUDGET ./...

# The full reproduction benchmarks (one per paper table/figure).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Serial vs pooled comparison for the parallel execution engine.
bench-parallel:
	$(GO) test -bench BenchmarkParallelSpeedup -benchtime 5x -run '^$$' .

# Machine-readable bench report (internal/benchfmt schema). Override
# BENCH_SCALE / BENCH_WORKERS / BENCH_REPS / BENCH_OUT for other
# sweeps; CI runs this at small scale and validates the artifact with
# `bench -check`. Reps default to 3 so per-dataset stage warm-up (the
# internal/stage memo) is amortized the way a sweep amortizes it.
BENCH_SCALE ?= 0.05
BENCH_WORKERS ?= 1,2
BENCH_REPS ?= 3
BENCH_OUT ?= BENCH_latest.json
bench-json:
	$(GO) run ./cmd/leodivide -scale $(BENCH_SCALE) bench \
		-workers $(BENCH_WORKERS) -reps $(BENCH_REPS) -out $(BENCH_OUT)
	$(GO) run ./cmd/leodivide bench -check $(BENCH_OUT)

# Regression tripwire against the committed baseline: re-measure the
# sweep-heavy experiments at the baseline's scale and fail on any cell
# more than BENCH_MAX_REGRESS slower. The staged sweep experiments now
# run in microseconds, so the check uses many reps to push the
# measurement above scheduler noise; even so, wall-clock comparison
# catches step changes (a dropped cache, an accidental quadratic), not
# percent-level drift.
BENCH_MAX_REGRESS ?= 0.20
BENCH_CHECK_REPS ?= 30
bench-check:
	$(GO) run ./cmd/leodivide -scale 0.25 bench -workers 1 \
		-reps $(BENCH_CHECK_REPS) -experiments table2,fig2,fig3,fleets,busyhour \
		-out BENCH_check.json \
		-against BENCH_baseline.json -max-regress $(BENCH_MAX_REGRESS)

fmt:
	gofmt -s -l -w .

# Replay the committed golden corpus; exits nonzero on drift.
verify:
	$(GO) run ./cmd/leodivide verify

# End-to-end smoke of the scenario-query server: start `leodivide
# serve` on a small dataset in the background, drive it with loadgen
# (which polls /healthz until the dataset is ready), and require zero
# request errors plus a nonzero cache hit rate. Override SERVE_* to
# change the load shape.
SERVE_SCALE ?= 0.02
SERVE_ADDR ?= 127.0.0.1:8931
SERVE_N ?= 200
SERVE_CONCURRENCY ?= 16
serve-smoke:
	$(GO) build -o leodivide-smoke ./cmd/leodivide
	./leodivide-smoke -scale $(SERVE_SCALE) serve -addr $(SERVE_ADDR) & \
	server_pid=$$!; \
	trap 'kill $$server_pid 2>/dev/null' EXIT; \
	./leodivide-smoke loadgen -addr $(SERVE_ADDR) -n $(SERVE_N) \
		-concurrency $(SERVE_CONCURRENCY) -wait 120s -min-hit-rate 0.05; \
	status=$$?; \
	kill $$server_pid 2>/dev/null; wait $$server_pid 2>/dev/null; \
	rm -f leodivide-smoke; \
	exit $$status

# Short fuzzing pass over every fuzz target, FUZZ_TIME each. The seed
# corpora live under <pkg>/testdata/fuzz/<FuzzName>/ and also run as
# plain test cases in every `go test`. Go only allows one matching
# -fuzz target per invocation, hence one line per target.
FUZZ_TIME ?= 5s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzReadLocationsCSV$$' -fuzztime $(FUZZ_TIME) ./internal/bdc
	$(GO) test -run '^$$' -fuzz '^FuzzReadProviderCSV$$' -fuzztime $(FUZZ_TIME) ./internal/bdc
	$(GO) test -run '^$$' -fuzz '^FuzzReadCellsCSV$$' -fuzztime $(FUZZ_TIME) ./internal/bdc
	$(GO) test -run '^$$' -fuzz '^FuzzFromToken$$' -fuzztime $(FUZZ_TIME) ./internal/hexgrid
	$(GO) test -run '^$$' -fuzz '^FuzzLatLngToCell$$' -fuzztime $(FUZZ_TIME) ./internal/hexgrid
	$(GO) test -run '^$$' -fuzz '^FuzzRegionSpec$$' -fuzztime $(FUZZ_TIME) ./internal/region

# Coverage with a checked-in floor (COVERAGE_FLOOR, percent). The floor
# sits ~1pt under the measured total because worker-occupancy branches
# in internal/par make exact coverage scheduling-dependent.
cover:
	$(GO) test -count=1 -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

cover-check: cover
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {gsub(/%/, "", $$3); print $$3}'); \
	floor=$$(cat COVERAGE_FLOOR); \
	echo "coverage: $$total% (floor: $$floor%)"; \
	awk -v t="$$total" -v f="$$floor" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' || \
		{ echo "coverage $$total% fell below the checked-in floor $$floor%"; exit 1; }

check: build vet lint test
