GO ?= go

.PHONY: build test race vet bench bench-parallel fmt check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# The full reproduction benchmarks (one per paper table/figure).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Serial vs pooled comparison for the parallel execution engine.
bench-parallel:
	$(GO) test -bench BenchmarkParallelSpeedup -benchtime 5x -run '^$$' .

fmt:
	gofmt -l -w .

check: build vet test
