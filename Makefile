GO ?= go

.PHONY: build test race vet bench bench-parallel bench-json fmt check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# The full reproduction benchmarks (one per paper table/figure).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Serial vs pooled comparison for the parallel execution engine.
bench-parallel:
	$(GO) test -bench BenchmarkParallelSpeedup -benchtime 5x -run '^$$' .

# Machine-readable bench report (internal/benchfmt schema). Override
# BENCH_SCALE / BENCH_WORKERS / BENCH_OUT for other sweeps; CI runs
# this at small scale and validates the artifact with `bench -check`.
BENCH_SCALE ?= 0.05
BENCH_WORKERS ?= 1,2
BENCH_OUT ?= BENCH_latest.json
bench-json:
	$(GO) run ./cmd/leodivide -scale $(BENCH_SCALE) bench \
		-workers $(BENCH_WORKERS) -out $(BENCH_OUT)
	$(GO) run ./cmd/leodivide bench -check $(BENCH_OUT)

fmt:
	gofmt -l -w .

check: build vet test
