package leodivide

// ScenarioConfig: the versioned, validated "what-if" option set behind
// `leodivide serve`. It extends RunConfig (dataset identity) with the
// model knobs that used to live only as writable Model fields —
// oversubscription cap, affordability share, Fig3 beamspread selection,
// Fig4 plan/subsidy selection — plus the experiment name, so library,
// CLI, bench and server all describe a scenario with one type and none
// can drift. CanonicalKey is the single byte encoding of a scenario:
// the result-cache key, the golden identity, and the serve/v1 wire
// contract all derive from it.

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"leodivide/internal/afford"
	"leodivide/internal/scenario"
	"leodivide/internal/spectrum"
)

// ScenarioSchema is the versioned identifier of the scenario encoding
// and the `leodivide serve` HTTP contract.
const ScenarioSchema = scenario.Schema

// ScenarioConfig describes one scenario query: which experiment to run,
// on which dataset (the embedded RunConfig), under which model knobs.
// The zero value of every knob means "the paper's default"; obtain a
// fully-populated copy from Normalized.
type ScenarioConfig struct {
	RunConfig

	// Experiment names the registry experiment to run ("table2", ...).
	Experiment string
	// MaxOversub is the acceptable oversubscription cap (0 = the FCC
	// fixed-wireless 20:1 default).
	MaxOversub float64
	// AffordShare is the affordability threshold as a share of monthly
	// income (0 = the paper's 2%).
	AffordShare float64
	// Spreads overrides the beamspread factors Fig3 evaluates (nil =
	// the paper's Table 2 spreads). Must be strictly ascending.
	Spreads []float64
	// Plans restricts the Fig4 comparison to the named plan labels
	// (nil = the paper's full four-option comparison). Labels follow
	// the catalog naming: "Starlink Residential", "Starlink Residential
	// w/ Lifeline", "Xfinity 300", "Spectrum Internet Premier".
	Plans []string
}

// DefaultScenarioConfig returns the paper's configuration with the
// named experiment selected.
func DefaultScenarioConfig(experiment string) ScenarioConfig {
	return ScenarioConfig{RunConfig: DefaultRunConfig(), Experiment: experiment}
}

// Normalized returns a copy with every defaulted knob materialized:
// zero MaxOversub/AffordShare become the paper's values, empty Spreads
// become PaperTable2Spreads, and Plans are sorted into canonical order.
// Two configs describing the same scenario normalize to equal values,
// which is what makes CanonicalKey a cache identity.
func (c ScenarioConfig) Normalized() ScenarioConfig {
	if c.MaxOversub == 0 {
		c.MaxOversub = spectrum.FCCFixedWirelessOversubscription
	}
	if c.AffordShare == 0 {
		c.AffordShare = afford.DefaultAffordabilityShare
	}
	if len(c.Spreads) == 0 {
		c.Spreads = PaperTable2Spreads
	}
	if len(c.Plans) == 0 {
		c.Plans = nil
	} else {
		plans := make([]string, len(c.Plans))
		copy(plans, c.Plans)
		sort.Strings(plans)
		c.Plans = plans
	}
	return c
}

// Validate reports whether the scenario is runnable: a valid RunConfig,
// a known experiment name, and every knob finite and in range.
func (c ScenarioConfig) Validate() error {
	if err := c.RunConfig.Validate(); err != nil {
		return err
	}
	if c.Experiment == "" {
		return fmt.Errorf("leodivide: scenario names no experiment")
	}
	if _, ok := NewModel().ExperimentByName(c.Experiment); !ok {
		return fmt.Errorf("leodivide: unknown experiment %q (see `leodivide experiments`)", c.Experiment)
	}
	n := c.Normalized()
	if math.IsNaN(n.MaxOversub) || math.IsInf(n.MaxOversub, 0) || n.MaxOversub < 1 || n.MaxOversub > 1000 {
		return fmt.Errorf("leodivide: max oversubscription must be in [1,1000], got %v", n.MaxOversub)
	}
	if math.IsNaN(n.AffordShare) || n.AffordShare <= 0 || n.AffordShare > 1 {
		return fmt.Errorf("leodivide: affordability share must be in (0,1], got %v", n.AffordShare)
	}
	for i, s := range n.Spreads {
		if math.IsNaN(s) || math.IsInf(s, 0) || s < 1 || s > 1000 {
			return fmt.Errorf("leodivide: beamspread %v at index %d must be in [1,1000]", s, i)
		}
		if i > 0 && s <= n.Spreads[i-1] {
			return fmt.Errorf("leodivide: beamspreads must be strictly ascending, got %v after %v", s, n.Spreads[i-1])
		}
	}
	seen := make(map[string]bool, len(n.Plans))
	for _, p := range n.Plans {
		if p == "" || p != strings.TrimSpace(p) {
			return fmt.Errorf("leodivide: invalid plan label %q", p)
		}
		if seen[p] {
			return fmt.Errorf("leodivide: duplicate plan label %q", p)
		}
		seen[p] = true
	}
	return nil
}

// CanonicalKey returns the scenario's canonical byte encoding: the
// versioned, validated, normalized field sequence that serves as the
// one cache and wire identity of the scenario. Parallelism is
// deliberately excluded — experiment output is byte-identical at every
// worker count (the determinism contract), so two runs differing only
// in parallelism share a cache entry.
func (c ScenarioConfig) CanonicalKey() (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	n := c.Normalized()
	return scenario.NewKey(scenario.Schema).
		Float("afford_share", n.AffordShare).
		Bool("calibrated", n.Calibrated).
		Str("experiment", n.Experiment).
		Float("max_oversub", n.MaxOversub).
		Strings("plans", n.Plans).
		Float("scale", n.Scale).
		Int64("seed", n.Seed).
		Floats("spreads", n.Spreads).
		Key()
}

// BuildModel constructs the model this scenario describes, extending
// RunConfig.BuildModel with the promoted knobs.
func (c ScenarioConfig) BuildModel() Model {
	n := c.Normalized()
	m := n.RunConfig.BuildModel()
	m.MaxOversub = n.MaxOversub
	m.AffordShare = n.AffordShare
	if len(n.Spreads) > 0 && !sameFloats(n.Spreads, PaperTable2Spreads) {
		m.Fig3Spreads = n.Spreads
	}
	m.PlanFilter = n.Plans
	return m
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		//lint:ignore floatcmp canonical-identity comparison: spreads are the same scenario only if bit-identical, the same rule the canonical key encodes
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
