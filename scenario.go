package leodivide

// ScenarioConfig: the versioned, validated "what-if" option set behind
// `leodivide serve`. It extends RunConfig (dataset identity) with the
// model knobs that used to live only as writable Model fields —
// oversubscription cap, affordability share, Fig3 beamspread selection,
// Fig4 plan/subsidy selection — plus the experiment name, so library,
// CLI, bench and server all describe a scenario with one type and none
// can drift. CanonicalKey is the single byte encoding of a scenario:
// the result-cache key, the golden identity, and the serve/v1 wire
// contract all derive from it.

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"leodivide/internal/afford"
	"leodivide/internal/constellation"
	"leodivide/internal/region"
	"leodivide/internal/scenario"
	"leodivide/internal/spectrum"
)

// ScenarioSchema is the versioned identifier of the scenario encoding
// and the `leodivide serve` HTTP contract (currently v3, which added
// the region selector).
const ScenarioSchema = scenario.Schema

// ScenarioSchemaV2 is the previous encoding (constellation selector
// plus cost-model overrides, no region field). Committed v2 keys and
// v2 requests still decode — they map to the default "us" region, so
// cached identities minted before the region selector stay stable; see
// ParseScenarioKey and UpgradeScenarioKey.
const ScenarioSchemaV2 = scenario.SchemaV2

// ScenarioSchemaV1 is the original encoding. Committed v1 keys and v1
// requests still decode — they map to the Starlink default on the "us"
// region.
const ScenarioSchemaV1 = scenario.SchemaV1

// ScenarioConfig describes one scenario query: which experiment to run,
// on which dataset (the embedded RunConfig), under which model knobs.
// The zero value of every knob means "the paper's default"; obtain a
// fully-populated copy from Normalized.
//
// Construct scenarios with NewScenarioConfig and functional options
// (WithConstellation, WithMaxOversub, ...) rather than struct
// literals: the options validate eagerly, so a typo'd constellation
// name or out-of-range knob fails at construction instead of
// surfacing later from CanonicalKey or BuildModel.
type ScenarioConfig struct {
	RunConfig

	// Experiment names the registry experiment to run ("table2", ...).
	Experiment string
	// MaxOversub is the acceptable oversubscription cap (0 = the FCC
	// fixed-wireless 20:1 default).
	MaxOversub float64
	// AffordShare is the affordability threshold as a share of monthly
	// income (0 = the paper's 2%).
	AffordShare float64
	// Spreads overrides the beamspread factors Fig3 evaluates (nil =
	// the paper's Table 2 spreads). Must be strictly ascending.
	Spreads []float64
	// Plans restricts the Fig4 comparison to the named plan labels
	// (nil = the paper's full four-option comparison). Labels follow
	// the catalog naming: "Starlink Residential", "Starlink Residential
	// w/ Lifeline", "Xfinity 300", "Spectrum Internet Premier".
	Plans []string
	// Constellation selects the declared constellation.System the model
	// analyzes, by canonical key ("" = "starlink"). See
	// constellation.SystemNames for the valid set.
	Constellation string
	// Region selects the demand/income geography the dataset is
	// generated from, by canonical key ("" = "us", the calibrated
	// national pipeline). See region.Names for the valid set.
	Region string
	// CostSatelliteUSD overrides the selected system's all-in
	// (build+launch) satellite cost (0 = the system default).
	CostSatelliteUSD float64
	// CostLifeYears overrides the system's satellite design life in
	// years (0 = the system default).
	CostLifeYears float64
	// CostTerminalUSD overrides the system's per-subscriber terminal
	// subsidy (0 = the system default).
	CostTerminalUSD float64
}

// DefaultScenarioConfig returns the paper's configuration with the
// named experiment selected.
func DefaultScenarioConfig(experiment string) ScenarioConfig {
	return ScenarioConfig{RunConfig: DefaultRunConfig(), Experiment: experiment}
}

// Normalized returns a copy with every defaulted knob materialized:
// zero MaxOversub/AffordShare become the paper's values, empty Spreads
// become PaperTable2Spreads, Plans are sorted into canonical order, an
// empty Constellation becomes "starlink", and zero cost overrides
// become the selected system's declared defaults. Two configs
// describing the same scenario normalize to equal values, which is
// what makes CanonicalKey a cache identity.
func (c ScenarioConfig) Normalized() ScenarioConfig {
	if c.MaxOversub == 0 {
		c.MaxOversub = spectrum.FCCFixedWirelessOversubscription
	}
	if c.AffordShare == 0 {
		c.AffordShare = afford.DefaultAffordabilityShare
	}
	if len(c.Spreads) == 0 {
		c.Spreads = PaperTable2Spreads
	}
	if len(c.Plans) == 0 {
		c.Plans = nil
	} else {
		plans := make([]string, len(c.Plans))
		copy(plans, c.Plans)
		sort.Strings(plans)
		c.Plans = plans
	}
	if c.Constellation == "" {
		c.Constellation = constellation.StarlinkSystem().Key
	}
	if c.Region == "" {
		c.Region = region.DefaultKey
	}
	// Cost defaults come from the selected system; an unknown name is
	// left untouched for Validate to report.
	if sys, ok := constellation.SystemByName(c.Constellation); ok {
		if c.CostSatelliteUSD == 0 {
			c.CostSatelliteUSD = sys.Cost.AllInSatelliteUSD()
		}
		if c.CostLifeYears == 0 {
			c.CostLifeYears = sys.Cost.DesignLifeYears
		}
		if c.CostTerminalUSD == 0 {
			c.CostTerminalUSD = sys.Cost.TerminalSubsidyUSD
		}
	}
	return c
}

// Validate reports whether the scenario is runnable: a valid RunConfig,
// a known experiment name, and every knob finite and in range.
func (c ScenarioConfig) Validate() error {
	if err := c.RunConfig.Validate(); err != nil {
		return err
	}
	if c.Experiment == "" {
		return fmt.Errorf("leodivide: scenario names no experiment")
	}
	if _, ok := NewModel().ExperimentByName(c.Experiment); !ok {
		return fmt.Errorf("leodivide: unknown experiment %q (see `leodivide experiments`)", c.Experiment)
	}
	return c.validateBase()
}

// validateBase validates everything except the experiment selection:
// the RunConfig and every promoted knob. It is what a scenario used as
// a serving or bench base (experiment chosen per request) must satisfy.
func (c ScenarioConfig) validateBase() error {
	if err := c.RunConfig.Validate(); err != nil {
		return err
	}
	n := c.Normalized()
	if math.IsNaN(n.MaxOversub) || math.IsInf(n.MaxOversub, 0) || n.MaxOversub < 1 || n.MaxOversub > 1000 {
		return fmt.Errorf("leodivide: max oversubscription must be in [1,1000], got %v", n.MaxOversub)
	}
	if math.IsNaN(n.AffordShare) || n.AffordShare <= 0 || n.AffordShare > 1 {
		return fmt.Errorf("leodivide: affordability share must be in (0,1], got %v", n.AffordShare)
	}
	for i, s := range n.Spreads {
		if math.IsNaN(s) || math.IsInf(s, 0) || s < 1 || s > 1000 {
			return fmt.Errorf("leodivide: beamspread %v at index %d must be in [1,1000]", s, i)
		}
		if i > 0 && s <= n.Spreads[i-1] {
			return fmt.Errorf("leodivide: beamspreads must be strictly ascending, got %v after %v", s, n.Spreads[i-1])
		}
	}
	seen := make(map[string]bool, len(n.Plans))
	for _, p := range n.Plans {
		if p == "" || p != strings.TrimSpace(p) {
			return fmt.Errorf("leodivide: invalid plan label %q", p)
		}
		if seen[p] {
			return fmt.Errorf("leodivide: duplicate plan label %q", p)
		}
		seen[p] = true
	}
	if _, ok := constellation.SystemByName(n.Constellation); !ok {
		return fmt.Errorf("leodivide: unknown constellation %q (valid: %s)",
			n.Constellation, strings.Join(constellation.SystemNames(), ", "))
	}
	if _, ok := region.ByName(n.Region); !ok {
		return fmt.Errorf("leodivide: unknown region %q (valid: %s)",
			n.Region, strings.Join(region.Names(), ", "))
	}
	if math.IsNaN(n.CostSatelliteUSD) || math.IsInf(n.CostSatelliteUSD, 0) || n.CostSatelliteUSD < 0 {
		return fmt.Errorf("leodivide: satellite cost override must be finite and non-negative, got %v", n.CostSatelliteUSD)
	}
	if math.IsNaN(n.CostLifeYears) || math.IsInf(n.CostLifeYears, 0) || n.CostLifeYears <= 0 || n.CostLifeYears > 100 {
		return fmt.Errorf("leodivide: design-life override must be in (0,100] years, got %v", n.CostLifeYears)
	}
	if math.IsNaN(n.CostTerminalUSD) || math.IsInf(n.CostTerminalUSD, 0) || n.CostTerminalUSD < 0 {
		return fmt.Errorf("leodivide: terminal cost override must be finite and non-negative, got %v", n.CostTerminalUSD)
	}
	return nil
}

// CanonicalKey returns the scenario's canonical byte encoding: the
// versioned, validated, normalized field sequence that serves as the
// one cache and wire identity of the scenario. Parallelism is
// deliberately excluded — experiment output is byte-identical at every
// worker count (the determinism contract), so two runs differing only
// in parallelism share a cache entry.
func (c ScenarioConfig) CanonicalKey() (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	n := c.Normalized()
	return scenario.NewKey(scenario.Schema).
		Float("afford_share", n.AffordShare).
		Bool("calibrated", n.Calibrated).
		Str("constellation", n.Constellation).
		Float("cost_life_years", n.CostLifeYears).
		Float("cost_sat_usd", n.CostSatelliteUSD).
		Float("cost_terminal_usd", n.CostTerminalUSD).
		Str("experiment", n.Experiment).
		Float("max_oversub", n.MaxOversub).
		Strings("plans", n.Plans).
		Str("region", n.Region).
		Float("scale", n.Scale).
		Int64("seed", n.Seed).
		Floats("spreads", n.Spreads).
		Key()
}

// BuildModel constructs the model this scenario describes: the
// selected constellation's model (with any cost overrides applied),
// extended with the promoted knobs. For the default scenario this is
// exactly RunConfig.BuildModel — the Starlink spec, untouched.
func (c ScenarioConfig) BuildModel() Model {
	n := c.Normalized()
	sys, ok := constellation.SystemByName(n.Constellation)
	if !ok {
		// Validate rejects unknown names; keep the method total by
		// falling back to the default system.
		sys = constellation.StarlinkSystem()
	}
	sys.Cost = n.appliedCost(sys.Cost)
	m := NewModelFor(sys).Parallelism(n.Parallelism)
	if n.Calibrated {
		m = m.Calibrated()
	}
	m.MaxOversub = n.MaxOversub
	m.AffordShare = n.AffordShare
	if len(n.Spreads) > 0 && !sameFloats(n.Spreads, PaperTable2Spreads) {
		m.Fig3Spreads = n.Spreads
	}
	m.PlanFilter = n.Plans
	return m
}

// Generate synthesizes the dataset this scenario describes: the
// embedded RunConfig identity (seed, scale, parallelism) applied to
// the scenario's region. This supersedes RunConfig.Generate wherever a
// full scenario is in hand — a scenario selecting a non-default region
// generates that region's geography, byte-identically at every
// parallelism.
func (c ScenarioConfig) Generate(ctx context.Context) (*Dataset, error) {
	n := c.Normalized()
	return GenerateDataset(ctx,
		WithSeed(n.Seed),
		WithScale(n.Scale),
		WithRegion(n.Region),
		WithParallelism(n.Parallelism),
	)
}

// appliedCost folds the scenario's cost overrides into a system's
// declared cost model. An all-in satellite-cost override lands on the
// build line with the launch line zeroed (the override is the sum); an
// override equal to the declared sum is a no-op, so default scenarios
// leave the spec's build/launch composition — and the model value —
// untouched.
func (c ScenarioConfig) appliedCost(base constellation.CostModel) constellation.CostModel {
	//lint:ignore floatcmp canonical-identity comparison: the override is the same cost model only when it equals the declared sum bit-identically, the rule the canonical key encodes
	if c.CostSatelliteUSD > 0 && c.CostSatelliteUSD != base.AllInSatelliteUSD() {
		base.SatelliteBuildUSD = c.CostSatelliteUSD
		base.LaunchPerSatelliteUSD = 0
	}
	if c.CostLifeYears > 0 {
		base.DesignLifeYears = c.CostLifeYears
	}
	if c.CostTerminalUSD > 0 {
		base.TerminalSubsidyUSD = c.CostTerminalUSD
	}
	return base
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		//lint:ignore floatcmp canonical-identity comparison: spreads are the same scenario only if bit-identical, the same rule the canonical key encodes
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
