package leodivide

// The benchmark harness: one benchmark per table and figure of the
// paper. Each benchmark regenerates the artifact from the calibrated
// synthetic dataset and reports the headline numbers alongside the
// paper's values via b.ReportMetric, so `go test -bench=.` doubles as
// the reproduction run recorded in EXPERIMENTS.md.

import (
	"context"
	"testing"

	"leodivide/internal/core"
	"leodivide/internal/regions"
	"leodivide/internal/sim"
)

func benchDataset(b *testing.B) *Dataset {
	b.Helper()
	ds := fullDataset(b)
	b.ResetTimer()
	return ds
}

// BenchmarkFig1CellDensityCDF regenerates Figure 1: the distribution of
// un(der)served locations per service cell. Paper: max 5998, p99 1437,
// p90 552.
func BenchmarkFig1CellDensityCDF(b *testing.B) {
	ds := benchDataset(b)
	m := NewModel()
	var r Fig1Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = m.Fig1(context.Background(), ds)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.MaxCell), "max-cell(paper=5998)")
	b.ReportMetric(float64(r.P99), "p99(paper=1437)")
	b.ReportMetric(float64(r.P90), "p90(paper=552)")
}

// BenchmarkTable1CapacityModel regenerates Table 1: the single-satellite
// capacity model. Paper: 17.3 Gbps per cell, 599.8 Gbps peak demand,
// ~35:1 max oversubscription.
func BenchmarkTable1CapacityModel(b *testing.B) {
	ds := benchDataset(b)
	m := NewModel()
	var c core.CapacityTable
	for i := 0; i < b.N; i++ {
		var err error
		c, err = m.Table1(context.Background(), ds)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(c.MaxCellCapacityGbps, "cell-Gbps(paper=17.3)")
	b.ReportMetric(c.PeakCellDemandGbps, "peak-Gbps(paper=599.8)")
	b.ReportMetric(c.MaxOversubscription, "oversub(paper=35)")
}

// BenchmarkFinding1Oversubscription regenerates Finding 1. Paper:
// 22,428 locations in cells above the 20:1 cap, 5,128 unservable,
// 99.89% servable.
func BenchmarkFinding1Oversubscription(b *testing.B) {
	ds := benchDataset(b)
	m := NewModel()
	var o core.OversubAnalysis
	for i := 0; i < b.N; i++ {
		var err error
		o, err = m.Finding1(context.Background(), ds)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(o.LocationsInCellsAboveCap), "locs-above(paper=22428)")
	b.ReportMetric(float64(o.ExcessLocations), "excess(paper=5128)")
	b.ReportMetric(o.ServedFractionAtCap*100, "served-pct(paper=99.89)")
}

// BenchmarkTable2ConstellationSize regenerates Table 2 with the
// paper-calibrated effective cell count. Paper full-service column:
// 79287/40611/16486/8284/5532 for beamspread 1/2/5/10/15.
func BenchmarkTable2ConstellationSize(b *testing.B) {
	ds := benchDataset(b)
	m := NewModel().Calibrated()
	var r Table2Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = m.Table2(context.Background(), ds)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.Rows[0].FullServiceSats), "s1-full(paper=79287)")
	b.ReportMetric(float64(r.Rows[1].FullServiceSats), "s2-full(paper=40611)")
	b.ReportMetric(float64(r.Rows[4].CappedOversubSats), "s15-capped(paper=5621)")
}

// BenchmarkFig2ServedFractionGrid regenerates Figure 2: the beamspread ×
// oversubscription served-fraction surface. Paper colour scale spans
// ~0.36 to ~0.99.
func BenchmarkFig2ServedFractionGrid(b *testing.B) {
	ds := benchDataset(b)
	m := NewModel()
	var r Fig2Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = m.Fig2(context.Background(), ds)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Fraction[len(r.Spreads)-1][0], "min-frac(paper~0.36)")
	b.ReportMetric(r.Fraction[0][len(r.Oversubs)-1], "max-frac(paper~0.99)")
}

// BenchmarkFig3DiminishingReturns regenerates Figure 3 for all of the
// paper's beamspread factors at 20:1. Paper: stepped curves with a
// ~5,103-location unservable floor.
func BenchmarkFig3DiminishingReturns(b *testing.B) {
	ds := benchDataset(b)
	m := NewModel()
	var rs []Fig3Result
	for i := 0; i < b.N; i++ {
		var err error
		rs, err = m.Fig3(context.Background(), ds)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rs[len(rs)-1]
	b.ReportMetric(float64(last.FloorUnserved), "floor(paper=5103)")
	if n := len(last.Steps); n > 0 {
		b.ReportMetric(float64(last.Steps[n-1].AdditionalSatellites), "last-step-sats")
	}
}

// BenchmarkFig4AffordabilityCDF regenerates Figure 4 / Finding 4.
// Paper: 3.5M of 4.7M (74.5%) cannot afford Starlink Residential; ~3.0M
// with Lifeline.
func BenchmarkFig4AffordabilityCDF(b *testing.B) {
	ds := benchDataset(b)
	m := NewModel()
	var r Fig4Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = m.Fig4(context.Background(), ds)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, res := range r.Results {
		if res.Plan.Name == "Starlink Residential" && res.Subsidy == nil {
			b.ReportMetric(res.UnaffordableLocations/1e6, "unaffordable-M(paper=3.5)")
			b.ReportMetric(res.UnaffordableFraction*100, "unaffordable-pct(paper=74.5)")
		}
	}
}

// BenchmarkSimCoverage cross-checks the analytic model with the
// time-stepped Walker-shell simulator over the demand cells.
func BenchmarkSimCoverage(b *testing.B) {
	ds := benchDataset(b)
	cfg := sim.DefaultConfig()
	cfg.Epochs = 2
	var res sim.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = sim.Run(context.Background(), cfg, ds.Cells)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MeanCoveredFraction*100, "covered-pct")
	b.ReportMetric(res.MeanVisibleSats, "visible-sats")
}

// BenchmarkAblationSweeps regenerates the parameter-sensitivity
// ablations of DESIGN.md: spectral efficiency, beam budget, inclination
// and cell size, all measured at beamspread 2 full service.
func BenchmarkAblationSweeps(b *testing.B) {
	ds := benchDataset(b)
	base := NewModel()
	dist := ds.Distribution()
	var deltas [4]float64
	for i := 0; i < b.N; i++ {
		baseN := base.Capacity.Size(dist, core.FullService, 2, 0).Satellites

		mEff := base
		mEff.Capacity.Beams.BeamCapacityGbps *= 5.5 / 4.5
		deltas[0] = ratio(mEff.Capacity.Size(dist, core.FullService, 2, 0).Satellites, baseN)

		mBeams := base
		mBeams.Capacity.Beams.BeamsPerSatellite = 32
		deltas[1] = ratio(mBeams.Capacity.Size(dist, core.FullService, 2, 0).Satellites, baseN)

		mInc := base
		mInc.Capacity.InclinationDeg = 70
		deltas[2] = ratio(mInc.Capacity.Size(dist, core.FullService, 2, 0).Satellites, baseN)

		mCell := base
		mCell.Capacity.CellAreaKm2 *= 7
		deltas[3] = ratio(mCell.Capacity.Size(dist, core.FullService, 2, 0).Satellites, baseN)
	}
	b.ReportMetric(deltas[0], "x-eff5.5")
	b.ReportMetric(deltas[1], "x-32beams")
	b.ReportMetric(deltas[2], "x-inc70")
	b.ReportMetric(deltas[3], "x-bigcells")
}

func ratio(n, base int) float64 {
	return float64(n) / float64(base)
}

// BenchmarkGenerateDataset measures end-to-end synthesis of the
// calibrated national dataset.
func BenchmarkGenerateDataset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GenerateDataset(context.Background(), WithSeed(int64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetAssessment evaluates the Gen1/Gen2 fleets against the
// sizing requirement (extension FLEET).
func BenchmarkFleetAssessment(b *testing.B) {
	ds := benchDataset(b)
	m := NewModel()
	var r FleetsResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = m.AssessFleets(context.Background(), ds)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.Gen2.EquivalentSatellites), "gen2-equiv-sats")
	b.ReportMetric(r.Gen2.Rows[1].CoverageRatio, "gen2-cover-s2")
}

// BenchmarkRefinedAffordability runs the dispersion-refined Figure 4
// (extension REFINED).
func BenchmarkRefinedAffordability(b *testing.B) {
	ds := benchDataset(b)
	m := NewModel()
	var r RefinedFig4Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = m.Fig4Refined(context.Background(), ds, 0, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Dispersed.UnaffordableFraction*100, "dispersed-pct")
	b.ReportMetric(r.LifelineAware.SubsidyUsableFraction*100, "rescued-pct")
}

// BenchmarkBusyHour runs the diurnal/stagger analysis (extension TRAFFIC).
func BenchmarkBusyHour(b *testing.B) {
	ds := benchDataset(b)
	m := NewModel()
	var r BusyHourResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = m.BusyHour(context.Background(), ds)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Stagger.FootprintPeakToMean, "footprint-peak-to-mean")
	b.ReportMetric(r.MedianCellMbps, "median-cell-mbps")
}

// BenchmarkEconomics prices the sizing results (extension ECON).
func BenchmarkEconomics(b *testing.B) {
	ds := benchDataset(b)
	m := NewModel()
	var r EconomicsResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = m.Economics(context.Background(), ds)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Scenarios[1].MonthlyPerLocationUSD, "s2-usd-loc-month")
}

// BenchmarkStateRollup computes the per-state report (extension STATES).
func BenchmarkStateRollup(b *testing.B) {
	ds := benchDataset(b)
	var n int
	for i := 0; i < b.N; i++ {
		profiles, err := regions.ByState(regions.DefaultConfig(), ds.Cells, ds.Incomes)
		if err != nil {
			b.Fatal(err)
		}
		n = len(profiles)
	}
	b.ReportMetric(float64(n), "states")
}
