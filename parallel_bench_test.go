package leodivide

// Benchmarks comparing serial (Parallelism(1)) against the default
// worker pool (Parallelism(0) = GOMAXPROCS) on the three heaviest
// pipeline stages. On a multi-core box the parallel variants show the
// speedup; on a single-core box both variants measure the pool's
// overhead floor. Run with:
//
//	go test -bench BenchmarkParallelSpeedup -benchtime 5x .

import (
	"context"
	"fmt"
	"runtime"
	"testing"
)

func parallelismLevels() []int {
	levels := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		levels = append(levels, n)
	} else {
		// Still exercise the pooled path so its overhead is visible.
		levels = append(levels, 4)
	}
	return levels
}

func BenchmarkParallelSpeedupGenerate(b *testing.B) {
	ctx := context.Background()
	for _, w := range parallelismLevels() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := GenerateDataset(ctx, WithSeed(1), WithParallelism(w)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkParallelSpeedupTable2(b *testing.B) {
	ctx := context.Background()
	ds := fullDataset(b)
	for _, w := range parallelismLevels() {
		m := NewModel().Calibrated().Parallelism(w)
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.Table2(ctx, ds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkParallelSpeedupFig2(b *testing.B) {
	ctx := context.Background()
	ds := fullDataset(b)
	for _, w := range parallelismLevels() {
		m := NewModel().Parallelism(w)
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.Fig2(ctx, ds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkParallelSpeedupFig3(b *testing.B) {
	ctx := context.Background()
	ds := fullDataset(b)
	for _, w := range parallelismLevels() {
		m := NewModel().Parallelism(w)
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.Fig3(ctx, ds, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
