package leodivide

// Facade-level metamorphic tests: properties the pipeline must satisfy
// under transformations of its inputs, independent of any calibrated
// constant. They complement the golden corpus — the corpus freezes
// exact values, these freeze relations, so a recalibration that
// legitimately moves the corpus still has to respect them.

import (
	"context"
	"testing"

	"leodivide/internal/testutil"
)

// TestSaveLoadRerunFixpoint is the persistence fixpoint oracle:
// saving a dataset through safeio, loading it back and rerunning every
// registry experiment must reproduce the original results
// byte-identically. This is what licenses caching generated datasets on
// disk — analysis cannot tell a loaded dataset from a fresh one.
func TestSaveLoadRerunFixpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry rerun is not a -short test")
	}
	ctx := context.Background()
	ds, err := GenerateDataset(ctx, WithSeed(1), WithScale(0.05))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := ds.Save(ctx, dir); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := LoadDataset(ctx, dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	m := NewModel()
	for _, exp := range m.Experiments() {
		exp := exp
		t.Run(exp.Name, func(t *testing.T) {
			orig, err := exp.Run(ctx, ds)
			if err != nil {
				t.Fatalf("run on generated dataset: %v", err)
			}
			rerun, err := exp.Run(ctx, loaded)
			if err != nil {
				t.Fatalf("run on loaded dataset: %v", err)
			}
			testutil.RequireEqual(t, exp.Name+" after save/load", orig, rerun)
		})
	}
}

// TestScaleInvariantRatios is the scale-invariance oracle: per-location
// ratios must not depend on how large a sample of the nation we
// synthesize, because scaling shrinks every cell proportionally (the
// paper's distribution shape is the pinned quantity, not the count).
// Totals, by contrast, must scale exactly linearly.
func TestScaleInvariantRatios(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scale generation is not a -short test")
	}
	ctx := context.Background()
	type probe struct {
		total        int
		gini         float64
		unaffordable float64
	}
	scales := []float64{0.05, 0.2}
	probes := make([]probe, len(scales))
	for i, scale := range scales {
		ds, err := GenerateDataset(ctx, WithSeed(1), WithScale(scale))
		if err != nil {
			t.Fatalf("scale %g: %v", scale, err)
		}
		m := NewModel()
		f1, err := m.Fig1(ctx, ds)
		if err != nil {
			t.Fatalf("scale %g fig1: %v", scale, err)
		}
		f4, err := m.Fig4(ctx, ds)
		if err != nil {
			t.Fatalf("scale %g fig4: %v", scale, err)
		}
		p := probe{total: f1.TotalLocs, gini: f1.Gini}
		found := false
		for _, r := range f4.Results {
			if r.Plan.Name == "Starlink Residential" && r.Subsidy == nil {
				p.unaffordable = r.UnaffordableFraction
				found = true
			}
		}
		if !found {
			t.Fatalf("scale %g: Fig4 has no unsubsidized Starlink Residential entry", scale)
		}
		probes[i] = p
	}

	// Totals scale exactly linearly: total(s)/s is the same 4.672M
	// national count at every scale.
	perUnit0 := float64(probes[0].total) / scales[0]
	for i := 1; i < len(scales); i++ {
		perUnit := float64(probes[i].total) / scales[i]
		if perUnit != perUnit0 {
			t.Errorf("total locations not linear in scale: %v/%g = %v but %v/%g = %v",
				probes[0].total, scales[0], perUnit0, probes[i].total, scales[i], perUnit)
		}
	}

	// Shape ratios are scale-invariant to well under 1% (measured drift
	// is ~0.1% for Gini and ~0.02% for affordability — the residual is
	// sampling noise in the unpinned geography, not model behavior).
	for i := 1; i < len(scales); i++ {
		testutil.RequireWithinRel(t, "Gini across scales", probes[i].gini, probes[0].gini, 0.01)
		testutil.RequireWithinRel(t, "unaffordable fraction across scales",
			probes[i].unaffordable, probes[0].unaffordable, 0.01)
	}

	// And the paper's headline: ~74.5% of locations cannot afford
	// Starlink Residential — at every scale.
	for _, p := range probes {
		testutil.RequireWithinRel(t, "paper F4 anchor", p.unaffordable, 0.745, 0.01)
	}
}
