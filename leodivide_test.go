package leodivide

import (
	"context"
	"math"
	"sync"
	"testing"

	"leodivide/internal/afford"
	"leodivide/internal/core"
	"leodivide/internal/orbit"
	"leodivide/internal/sim"
)

// The full-scale dataset takes ~0.5s to generate; share one across the
// integration tests.
var (
	dsOnce sync.Once
	dsFull *Dataset
	dsErr  error
)

func fullDataset(t testing.TB) *Dataset {
	dsOnce.Do(func() {
		dsFull, dsErr = GenerateDataset(context.Background(), WithSeed(1))
	})
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	return dsFull
}

func TestGenerateDatasetCalibration(t *testing.T) {
	ds := fullDataset(t)
	if got := ds.TotalLocations(); got != 4672000 {
		t.Errorf("total = %d, want 4672000", got)
	}
	if ds.NumCells() < 20000 || ds.NumCells() > 35000 {
		t.Errorf("cells = %d, want a plausible US demand-cell count", ds.NumCells())
	}
	if ds.Incomes.Len() < 1000 {
		t.Errorf("income table has only %d counties", ds.Incomes.Len())
	}
}

func TestGenerateDatasetOptions(t *testing.T) {
	if _, err := GenerateDataset(context.Background(), WithScale(0)); err == nil {
		t.Error("scale 0 should fail")
	}
	if _, err := GenerateDataset(context.Background(), WithScale(2)); err == nil {
		t.Error("scale 2 should fail")
	}
	small, err := GenerateDataset(context.Background(), WithSeed(3), WithScale(0.05))
	if err != nil {
		t.Fatal(err)
	}
	want := int(4672000 * 0.05)
	if got := small.TotalLocations(); got != want {
		t.Errorf("scaled total = %d, want %d", got, want)
	}
}

func TestFig1(t *testing.T) {
	m := NewModel()
	r, err := m.Fig1(context.Background(), fullDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxCell != 5998 {
		t.Errorf("max cell = %d, want 5998", r.MaxCell)
	}
	if r.P90 < 548 || r.P90 > 556 {
		t.Errorf("p90 = %d, want ≈552", r.P90)
	}
	if r.P99 < 1420 || r.P99 > 1455 {
		t.Errorf("p99 = %d, want ≈1437", r.P99)
	}
	if len(r.CDF) == 0 {
		t.Error("empty CDF series")
	}
	for i := 1; i < len(r.CDF); i++ {
		if r.CDF[i].Y < r.CDF[i-1].Y {
			t.Fatal("CDF not monotone")
		}
	}
}

func TestTable1(t *testing.T) {
	m := NewModel()
	c, err := m.Table1(context.Background(), fullDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	if c.PeakCellLocations != 5998 {
		t.Errorf("peak = %d", c.PeakCellLocations)
	}
	if math.Abs(c.PeakCellDemandGbps-599.8) > 1e-9 {
		t.Errorf("demand = %v", c.PeakCellDemandGbps)
	}
	if math.Abs(c.MaxOversubscription-34.67) > 0.02 {
		t.Errorf("oversub = %v, want ≈34.67 (paper ~35:1)", c.MaxOversubscription)
	}
}

func TestFinding1(t *testing.T) {
	m := NewModel()
	f, err := m.Finding1(context.Background(), fullDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	if f.LocationsInCellsAboveCap != 22428 {
		t.Errorf("locations above cap = %d, want 22428", f.LocationsInCellsAboveCap)
	}
	if f.ExcessLocations != 5128 {
		t.Errorf("excess = %d, want 5128", f.ExcessLocations)
	}
	// 99.89% served at 20:1.
	if math.Abs(f.ServedFractionAtCap-0.9989) > 0.0002 {
		t.Errorf("served fraction = %v, want ≈0.9989", f.ServedFractionAtCap)
	}
}

func TestTable2AgainstPaper(t *testing.T) {
	// The calibrated model reproduces the paper's Table 2 within 0.5%
	// in both scenario columns.
	m := NewModel().Calibrated()
	r, err := m.Table2(context.Background(), fullDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("got %d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		full := r.PaperFullService[row.Spread]
		capped := r.PaperCapped[row.Spread]
		if rel(row.FullServiceSats, full) > 0.005 {
			t.Errorf("spread %g: full-service %d vs paper %d", row.Spread, row.FullServiceSats, full)
		}
		if rel(row.CappedOversubSats, capped) > 0.005 {
			t.Errorf("spread %g: capped %d vs paper %d", row.Spread, row.CappedOversubSats, capped)
		}
		if row.CappedOversubSats <= row.FullServiceSats {
			t.Errorf("spread %g: capped should slightly exceed full service", row.Spread)
		}
	}
}

func TestTable2GeometricWithinBand(t *testing.T) {
	// The uncalibrated (geometry-derived) sizes stay within 10% of the
	// paper and preserve the 1/(1+20s) scaling exactly.
	m := NewModel()
	r, err := m.Table2(context.Background(), fullDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if rel(row.FullServiceSats, r.PaperFullService[row.Spread]) > 0.10 {
			t.Errorf("spread %g: geometric %d deviates >10%% from paper %d",
				row.Spread, row.FullServiceSats, r.PaperFullService[row.Spread])
		}
	}
	base := float64(r.Rows[0].FullServiceSats) * 21
	for _, row := range r.Rows[1:] {
		product := float64(row.FullServiceSats) * (1 + 20*row.Spread)
		if math.Abs(product-base)/base > 0.001 {
			t.Errorf("spread %g: scaling invariant broken", row.Spread)
		}
	}
}

func rel(got, want int) float64 {
	return math.Abs(float64(got-want)) / float64(want)
}

func TestFig2(t *testing.T) {
	m := NewModel()
	r, err := m.Fig2(context.Background(), fullDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	lo := r.Fraction[len(r.Spreads)-1][0]  // worst corner: spread 14, oversub 5
	hi := r.Fraction[0][len(r.Oversubs)-1] // best corner: spread 2, oversub 30
	if lo > 0.5 || lo < 0.2 {
		t.Errorf("worst-corner fraction = %v, want ≈0.36 like the paper's scale", lo)
	}
	if hi < 0.85 {
		t.Errorf("best-corner fraction = %v, want ≈0.9+", hi)
	}
}

func TestFig3(t *testing.T) {
	m := NewModel()
	results, err := m.Fig3(context.Background(), fullDataset(t), 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.FloorUnserved != 5128 {
			t.Errorf("floor = %d, want 5128", r.FloorUnserved)
		}
		if len(r.Points) == 0 || len(r.Steps) == 0 {
			t.Fatal("empty curve")
		}
		// Diminishing returns: the satellites-per-location cost of the
		// last step exceeds that of the first.
		first, last := r.Steps[0], r.Steps[len(r.Steps)-1]
		costFirst := float64(first.AdditionalSatellites) / float64(first.LocationsGained)
		costLast := float64(last.AdditionalSatellites) / float64(last.LocationsGained)
		if costLast <= costFirst {
			t.Errorf("no diminishing returns: first %v, last %v sats/location", costFirst, costLast)
		}
	}
	// Lower spread needs more satellites everywhere.
	if results[0].Points[0].Satellites <= results[1].Points[0].Satellites {
		t.Error("spread 5 should need more satellites than spread 10")
	}
}

func TestFig4AgainstPaper(t *testing.T) {
	m := NewModel()
	r, err := m.Fig4(context.Background(), fullDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]afford.Result{}
	for _, res := range r.Results {
		name := res.Plan.Name
		if res.Subsidy != nil {
			name += " w/ " + res.Subsidy.Name
		}
		byName[name] = res
	}
	starlink := byName["Starlink Residential"]
	if math.Abs(starlink.UnaffordableFraction-0.745) > 0.01 {
		t.Errorf("Starlink unaffordable fraction = %v, want 0.745", starlink.UnaffordableFraction)
	}
	if math.Abs(starlink.UnaffordableLocations-3.48e6) > 0.1e6 {
		t.Errorf("Starlink unaffordable = %v, want ≈3.5M", starlink.UnaffordableLocations)
	}
	lifeline := byName["Starlink Residential w/ Lifeline"]
	if math.Abs(lifeline.UnaffordableLocations-3.0e6) > 0.1e6 {
		t.Errorf("Lifeline unaffordable = %v, want ≈3.0M", lifeline.UnaffordableLocations)
	}
	// Terrestrial plans affordable for >99.99%.
	for _, name := range []string{"Xfinity 300", "Spectrum Internet Premier"} {
		if f := byName[name].UnaffordableFraction; f > 0.0001 {
			t.Errorf("%s unaffordable fraction = %v, want ≤0.0001", name, f)
		}
	}
	// Figure 4 curves decrease and reach ~zero before a 5.5% share.
	for name, curve := range r.Curves {
		for i := 1; i < len(curve); i++ {
			if curve[i].Count > curve[i-1].Count {
				t.Fatalf("%s: curve not nonincreasing", name)
			}
		}
		if last := curve[len(curve)-1]; last.Count != 0 {
			t.Errorf("%s: curve tail = %v, want 0", name, last.Count)
		}
	}
}

func TestRunFindings(t *testing.T) {
	m := NewModel()
	f, err := m.RunFindings(context.Background(), fullDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	if f.F2SatellitesAtSpread2 < 40000 {
		t.Errorf("F2 satellites = %d, want >40000 (the paper's headline)", f.F2SatellitesAtSpread2)
	}
	if f.F2CurrentConstellation != 8000 {
		t.Errorf("current constellation constant = %d", f.F2CurrentConstellation)
	}
	if len(f.F3) == 0 {
		t.Error("no F3 steps")
	}
	if math.Abs(f.F4UnaffordableFraction-0.745) > 0.01 {
		t.Errorf("F4 fraction = %v", f.F4UnaffordableFraction)
	}
}

func TestDatasetDeterminism(t *testing.T) {
	a, err := GenerateDataset(context.Background(), WithSeed(42), WithScale(0.02))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateDataset(context.Background(), WithSeed(42), WithScale(0.02))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumCells() != b.NumCells() || a.TotalLocations() != b.TotalLocations() {
		t.Fatal("same seed produced different datasets")
	}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Fatalf("cell %d differs", i)
		}
	}
	ca := a.Incomes.Counties()
	cb := b.Incomes.Counties()
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("county %d differs", i)
		}
	}
}

func TestScenarioConstantsExposed(t *testing.T) {
	m := NewModel()
	if m.MaxOversub != 20 {
		t.Errorf("MaxOversub = %v, want 20", m.MaxOversub)
	}
	if m.AffordShare != 0.02 {
		t.Errorf("AffordShare = %v, want 0.02", m.AffordShare)
	}
	if m.Capacity.Binding != core.BindPeakOnly {
		t.Errorf("default binding = %v", m.Capacity.Binding)
	}
}

// TestSizingValidatedBySimulator closes the loop between the analytic
// sizing model and the time-stepped simulator: a Walker shell of
// roughly the size Table 2 demands at beamspread 15 must let the
// greedy beam allocator serve nearly every demand cell, while the
// current ~1,584-satellite shell falls far short at the same spread.
func TestSizingValidatedBySimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("large simulation in -short mode")
	}
	ds := fullDataset(t)
	m := NewModel()
	required := m.Capacity.Size(ds.Distribution(), core.CappedOversub, 15, m.MaxOversub).Satellites

	cfg := sim.DefaultConfig()
	cfg.Spread = 15
	cfg.Oversub = m.MaxOversub
	cfg.Epochs = 2
	// Build a Walker shell close to the required size.
	planes := 72
	perPlane := (required + planes - 1) / planes
	cfg.Shell = orbit.Walker{
		AltitudeKm:     550,
		InclinationDeg: 53,
		Total:          planes * perPlane,
		Planes:         planes,
		Phasing:        13,
	}
	big, err := sim.Run(context.Background(), cfg, ds.Cells)
	if err != nil {
		t.Fatal(err)
	}
	// The analytically sufficient constellation serves nearly all
	// coverable cells (the ~5.6% Alaska band above the shell's reach is
	// uncoverable by any 53° fleet).
	if big.MeanServedFraction < 0.85 {
		t.Errorf("sized constellation (%d sats) served only %.3f of cells",
			cfg.Shell.Total, big.MeanServedFraction)
	}

	small := cfg
	small.Shell = orbit.StarlinkShell1()
	cur, err := sim.Run(context.Background(), small, ds.Cells)
	if err != nil {
		t.Fatal(err)
	}
	if cur.MeanServedFraction > 0.6*big.MeanServedFraction {
		t.Errorf("current shell served %.3f, expected far below the sized constellation's %.3f",
			cur.MeanServedFraction, big.MeanServedFraction)
	}
}
