package leodivide

// Canonical-key decoding and the schema migration contract. Schema v3
// added the region selector; v2 added the constellation selector and
// cost-model overrides. Every key minted under an older schema
// describes a scenario that is still expressible — v1 maps to the
// Starlink default with declared costs, v2 to the default "us" region
// — so old keys keep decoding and map deterministically onto their
// current identity. That is what keeps cached identities stable across
// schema bumps: UpgradeScenarioKey(oldKey) equals the CanonicalKey of
// the same scenario asked for under the current schema.

import (
	"fmt"
	"strconv"
	"strings"

	"leodivide/internal/scenario"
)

// scenarioKeyFieldsV1/V2/V3 are the exact ordered field sets each
// schema's encoder writes. ParseScenarioKey requires a key to carry
// its schema's fields exactly — nothing missing, nothing unknown — so
// a truncated or hand-extended key is an error, not a silently
// defaulted scenario.
var (
	scenarioKeyFieldsV1 = []string{
		"afford_share", "calibrated", "experiment", "max_oversub",
		"plans", "scale", "seed", "spreads",
	}
	scenarioKeyFieldsV2 = []string{
		"afford_share", "calibrated", "constellation", "cost_life_years",
		"cost_sat_usd", "cost_terminal_usd", "experiment", "max_oversub",
		"plans", "scale", "seed", "spreads",
	}
	scenarioKeyFieldsV3 = []string{
		"afford_share", "calibrated", "constellation", "cost_life_years",
		"cost_sat_usd", "cost_terminal_usd", "experiment", "max_oversub",
		"plans", "region", "scale", "seed", "spreads",
	}
)

// ParseScenarioKey decodes a canonical key — schema v1, v2 or v3 —
// back into the ScenarioConfig it encodes. The returned config
// validates and re-encodes to a stable identity: for a v3 key, the
// same key; for a v2 key, the same scenario on the default "us"
// region; for a v1 key, the Starlink default with declared costs.
// Parallelism is not part of any key and comes back zero.
func ParseScenarioKey(key string) (ScenarioConfig, error) {
	schema, fields, err := scenario.ParseKey(key)
	if err != nil {
		return ScenarioConfig{}, err
	}
	var want []string
	switch schema {
	case ScenarioSchemaV1:
		want = scenarioKeyFieldsV1
	case ScenarioSchemaV2:
		want = scenarioKeyFieldsV2
	case ScenarioSchema:
		want = scenarioKeyFieldsV3
	default:
		return ScenarioConfig{}, fmt.Errorf("leodivide: unsupported scenario key schema %q (want %q, %q or %q)",
			schema, ScenarioSchema, ScenarioSchemaV2, ScenarioSchemaV1)
	}
	if len(fields) != len(want) {
		return ScenarioConfig{}, fmt.Errorf("leodivide: scenario key under %s carries %d fields, want %d",
			schema, len(fields), len(want))
	}
	cfg := ScenarioConfig{RunConfig: DefaultRunConfig()}
	for i, f := range fields {
		if f.Name != want[i] {
			return ScenarioConfig{}, fmt.Errorf("leodivide: scenario key field %q unknown under %s (want %q)",
				f.Name, schema, want[i])
		}
		if err := cfg.setKeyField(f); err != nil {
			return ScenarioConfig{}, fmt.Errorf("leodivide: scenario key field %s: %w", f.Name, err)
		}
	}
	if err := cfg.Validate(); err != nil {
		return ScenarioConfig{}, err
	}
	return cfg, nil
}

// setKeyField decodes one canonical-key field into the config.
func (c *ScenarioConfig) setKeyField(f scenario.Field) error {
	switch f.Name {
	case "afford_share":
		return parseKeyFloat(f.Value, &c.AffordShare)
	case "calibrated":
		v, err := strconv.ParseBool(f.Value)
		if err != nil {
			return err
		}
		c.Calibrated = v
	case "constellation":
		c.Constellation = f.Value
	case "cost_life_years":
		return parseKeyFloat(f.Value, &c.CostLifeYears)
	case "cost_sat_usd":
		return parseKeyFloat(f.Value, &c.CostSatelliteUSD)
	case "cost_terminal_usd":
		return parseKeyFloat(f.Value, &c.CostTerminalUSD)
	case "experiment":
		c.Experiment = f.Value
	case "max_oversub":
		return parseKeyFloat(f.Value, &c.MaxOversub)
	case "plans":
		if f.Value != "" {
			c.Plans = strings.Split(f.Value, ",")
		}
	case "region":
		c.Region = f.Value
	case "scale":
		return parseKeyFloat(f.Value, &c.Scale)
	case "seed":
		v, err := strconv.ParseInt(f.Value, 10, 64)
		if err != nil {
			return err
		}
		c.Seed = v
	case "spreads":
		if f.Value == "" {
			return nil
		}
		parts := strings.Split(f.Value, ",")
		c.Spreads = make([]float64, len(parts))
		for i, p := range parts {
			if err := parseKeyFloat(p, &c.Spreads[i]); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unhandled field %q", f.Name)
	}
	return nil
}

func parseKeyFloat(s string, dst *float64) error {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return err
	}
	*dst = v
	return nil
}

// UpgradeScenarioKey maps any committed canonical key — v1, v2 or v3
// — to its identity under the current schema. v3 keys are fixpoints;
// v2 keys land on the "us"-region v3 key of the same scenario; v1 keys
// land on the Starlink-default v3 key. This is the cache-migration
// contract: an identity minted under any schema finds the same cache
// slot after the bump.
func UpgradeScenarioKey(key string) (string, error) {
	cfg, err := ParseScenarioKey(key)
	if err != nil {
		return "", err
	}
	return cfg.CanonicalKey()
}
