package leodivide

import (
	"context"
	"math"
	"testing"
)

func TestAssessFleets(t *testing.T) {
	m := NewModel()
	r, err := m.AssessFleets(context.Background(), fullDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Gen1.TotalSatellites != 4408 || r.Gen2.TotalSatellites != 29988 {
		t.Errorf("fleet totals = %d / %d", r.Gen1.TotalSatellites, r.Gen2.TotalSatellites)
	}
	// Gen1 cannot cover any of the paper's beamspread requirements.
	for _, row := range r.Gen1.Rows {
		if row.CoverageRatio >= 1 {
			t.Errorf("Gen1 covers beamspread %g?!", row.Spread)
		}
	}
	// Gen2 covers the high-beamspread requirements but not the
	// low-beamspread (high-quality) ones — the paper's tradeoff
	// persists even at ~30k satellites.
	last := r.Gen2.Rows[len(r.Gen2.Rows)-1]
	first := r.Gen2.Rows[0]
	if last.CoverageRatio < 1 {
		t.Errorf("Gen2 should cover beamspread %g (ratio %v)", last.Spread, last.CoverageRatio)
	}
	if first.CoverageRatio >= 1 {
		t.Errorf("Gen2 should not cover beamspread %g (ratio %v)", first.Spread, first.CoverageRatio)
	}
}

func TestFig4Refined(t *testing.T) {
	m := NewModel()
	r, err := m.Fig4Refined(context.Background(), fullDataset(t), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.SigmaLog <= 0 || r.HouseholdSize != 3 {
		t.Errorf("defaults not applied: %+v", r)
	}
	// Median-only reproduces the paper's 74.5%.
	if math.Abs(r.MedianOnly.UnaffordableFraction-0.745) > 0.01 {
		t.Errorf("median-only fraction = %v", r.MedianOnly.UnaffordableFraction)
	}
	// Dispersion moves the estimate but keeps it in the same regime.
	if r.Dispersed.UnaffordableFraction < 0.4 || r.Dispersed.UnaffordableFraction > 0.8 {
		t.Errorf("dispersed fraction = %v", r.Dispersed.UnaffordableFraction)
	}
	// Starlink's subsidized threshold sits far above the Lifeline
	// eligibility ceiling, so eligibility-awareness cannot improve on
	// full price.
	if r.LifelineAware.SubsidyUsableFraction != 0 {
		t.Errorf("rescued fraction = %v, want 0 at Starlink's price",
			r.LifelineAware.SubsidyUsableFraction)
	}
	if r.LifelineAware.EligibleFraction <= 0 {
		t.Error("no Lifeline-eligible households?")
	}
}

func TestBusyHour(t *testing.T) {
	m := NewModel()
	r, err := m.BusyHour(context.Background(), fullDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.PeakHourLocal < 18 || r.PeakHourLocal > 22 {
		t.Errorf("peak hour = %d", r.PeakHourLocal)
	}
	// The stagger ordering that makes P2 bind locally.
	if !(r.Stagger.NationalPeakToMean < r.Stagger.FootprintPeakToMean &&
		r.Stagger.FootprintPeakToMean <= r.Stagger.CellPeakToMean+1e-9) {
		t.Errorf("stagger ordering violated: %+v", r.Stagger)
	}
	// Busy-hour throughput collapses with cell density.
	if !(r.MedianCellMbps > r.P90CellMbps && r.P90CellMbps > r.PeakCellMbps) {
		t.Errorf("throughput ordering violated: %v / %v / %v",
			r.MedianCellMbps, r.P90CellMbps, r.PeakCellMbps)
	}
	// Even the median cell falls short of the 100 Mbps benchmark with
	// one 10-way spread beam.
	if r.MedianCellMbps > 100 {
		t.Errorf("median cell busy-hour rate = %v, expected below benchmark", r.MedianCellMbps)
	}
}

func TestEconomics(t *testing.T) {
	m := NewModel()
	r, err := m.Economics(context.Background(), fullDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Scenarios) != len(PaperTable2Spreads) {
		t.Fatalf("got %d scenarios", len(r.Scenarios))
	}
	// Cost falls with beamspread.
	for i := 1; i < len(r.Scenarios); i++ {
		if r.Scenarios[i].CapexUSD >= r.Scenarios[i-1].CapexUSD {
			t.Error("capex not decreasing with beamspread")
		}
	}
	// The >40k-satellite deployment cannot be sustained at $120/month.
	if r.Scenarios[1].MonthlyPerLocationUSD < 120 {
		t.Errorf("beamspread-2 sustaining cost = $%v/loc/month, expected above the $120 price",
			r.Scenarios[1].MonthlyPerLocationUSD)
	}
	// Tail steps get monotonically more expensive per location.
	for i := 1; i < len(r.Tail); i++ {
		if r.Tail[i].CapexPerLocationUSD <= r.Tail[i-1].CapexPerLocationUSD {
			t.Error("tail cost per location not increasing")
		}
	}
}

func TestFig1Gini(t *testing.T) {
	m := NewModel()
	r, err := m.Fig1(context.Background(), fullDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	// A long-tail demand distribution is strongly concentrated.
	if r.Gini < 0.5 || r.Gini >= 1 {
		t.Errorf("Gini = %v, want strong concentration", r.Gini)
	}
	if len(r.Lorenz) != 101 {
		t.Errorf("Lorenz has %d points", len(r.Lorenz))
	}
	last := r.Lorenz[len(r.Lorenz)-1]
	if math.Abs(last.Y-1) > 1e-9 {
		t.Errorf("Lorenz endpoint = %v", last.Y)
	}
}

func TestStability(t *testing.T) {
	m := NewModel()
	r, err := m.Stability(context.Background(), 3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if r.Seeds != 3 {
		t.Errorf("seeds = %d", r.Seeds)
	}
	// Constellation size varies only through binding-cell geography. At
	// this small test scale the scaled-down peaks fall below the 4-beam
	// threshold, so the binding cell can be any 1-beam cell and its
	// latitude wanders more than at full scale — allow 15% here (full
	// scale varies ~1%, see EXPERIMENTS.md).
	if r.Table2Spread2.RelSpread() > 0.15 {
		t.Errorf("constellation size rel spread = %v, want <15%%", r.Table2Spread2.RelSpread())
	}
	if r.Table2Spread2.Min > r.Table2Spread2.Mean || r.Table2Spread2.Max < r.Table2Spread2.Mean {
		t.Error("min/mean/max ordering violated")
	}
	// Affordability is quantile-pinned: dispersion well under 1%.
	if r.UnaffordableFraction.RelSpread() > 0.01 {
		t.Errorf("affordability rel spread = %v", r.UnaffordableFraction.RelSpread())
	}
	// Served fraction at 20:1 is anchored exactly.
	if r.ServedFractionAt20.StdDev > 1e-3 {
		t.Errorf("served fraction should be pinned, stddev = %v", r.ServedFractionAt20.StdDev)
	}
	if _, err := m.Stability(context.Background(), 1, 0.05); err == nil {
		t.Error("single seed should fail")
	}
}
