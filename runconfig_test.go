package leodivide

import (
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestRunConfigEquivalence: the unified option set must build exactly
// what the underlying constructors build, so the CLI and bench surfaces
// cannot drift from library use.
func TestRunConfigEquivalence(t *testing.T) {
	ctx := context.Background()
	cfg := DefaultRunConfig()
	cfg.Seed = 7
	cfg.Scale = 0.02
	cfg.Parallelism = 2
	cfg.Calibrated = true

	m := cfg.BuildModel()
	want := NewModel().Parallelism(2).Calibrated()
	if !reflect.DeepEqual(m, want) {
		t.Errorf("BuildModel = %+v, want %+v", m, want)
	}
	if m.Workers != m.Capacity.Parallelism {
		t.Errorf("parallelism drift: Workers=%d, Capacity.Parallelism=%d",
			m.Workers, m.Capacity.Parallelism)
	}

	ds, err := cfg.Generate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := GenerateDataset(ctx, WithSeed(7), WithScale(0.02), WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds.Cells, direct.Cells) {
		t.Error("RunConfig.Generate produced different cells than GenerateDataset with the same options")
	}
	if ds.Seed != direct.Seed || ds.Resolution != direct.Resolution {
		t.Error("RunConfig.Generate metadata differs from GenerateDataset")
	}
}

func TestRunConfigValidate(t *testing.T) {
	cfg := DefaultRunConfig()
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	// NaN is the regression case: it fails both sides of the (0,1] range
	// comparison, so a plain range check lets it through.
	for _, bad := range []float64{0, -1, 1.5, math.NaN(), math.Inf(1), math.Inf(-1)} {
		c := cfg
		c.Scale = bad
		if err := c.Validate(); err == nil {
			t.Errorf("scale %v should be invalid", bad)
		}
		if _, err := c.Generate(context.Background()); err == nil {
			t.Errorf("Generate with scale %v should fail", bad)
		}
	}
	neg := cfg
	neg.Parallelism = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative parallelism should be invalid")
	}
}

// TestRunConfigString: the canonical human rendering every log line
// shares (bench, verify, serve). Scale formats exactly as it does in
// golden corpus paths and scenario cache keys.
func TestRunConfigString(t *testing.T) {
	cfg := DefaultRunConfig()
	cfg.Seed = 7
	cfg.Scale = 0.02
	if got, want := cfg.String(), "seed=7 scale=0.02 parallelism=0 calibrated=false"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	cfg.Scale = 1
	cfg.Parallelism = 4
	cfg.Calibrated = true
	if got, want := cfg.String(), "seed=7 scale=1 parallelism=4 calibrated=true"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestRunAs: the typed accessor returns concrete results without the
// caller type-switching on any.
func TestRunAs(t *testing.T) {
	ctx := context.Background()
	ds := fullDataset(t)
	m := NewModel()

	t2, err := RunAs[Table2Result](ctx, m, ds, "table2")
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != len(PaperTable2Spreads) {
		t.Errorf("table2 rows = %d, want %d", len(t2.Rows), len(PaperTable2Spreads))
	}

	if _, err := RunAs[Fig1Result](ctx, m, ds, "table2"); err == nil {
		t.Error("RunAs with the wrong type parameter should fail")
	} else if !strings.Contains(err.Error(), "Table2Result") {
		t.Errorf("type mismatch error should name the actual type, got: %v", err)
	}

	if _, err := RunAs[Fig1Result](ctx, m, ds, "no-such-experiment"); err == nil {
		t.Error("RunAs with an unknown name should fail")
	}
}

// TestRegistryCancellationContract: with an already-cancelled context,
// every registry runner must return ctx.Err() before touching the
// dataset — proven by passing a nil dataset, which would panic if any
// runner dereferenced it first.
func TestRegistryCancellationContract(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, exp := range NewModel().Experiments() {
		v, err := exp.Run(ctx, nil)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("experiment %q with cancelled ctx: err = %v, want context.Canceled", exp.Name, err)
		}
		if v != nil {
			t.Errorf("experiment %q with cancelled ctx returned a result: %v", exp.Name, v)
		}
	}
}
