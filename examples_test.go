package leodivide

// Bitrot guard for the examples/ programs. Each example is its own
// main package outside the module's test graph, so ordinary `go test`
// never compiles them; this test vets and runs every one so an API
// change that breaks an example fails CI instead of rotting silently.

import (
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"testing"
)

func exampleDirs(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatalf("reading examples/: %v", err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	sort.Strings(dirs)
	if len(dirs) == 0 {
		t.Fatal("no example directories found")
	}
	return dirs
}

func goTool(t *testing.T) string {
	t.Helper()
	path, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}
	return path
}

func TestExamplesVet(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping example vet in -short mode")
	}
	out, err := exec.Command(goTool(t), "vet", "./examples/...").CombinedOutput()
	if err != nil {
		t.Fatalf("go vet ./examples/...: %v\n%s", err, out)
	}
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping example runs in -short mode")
	}
	gobin := goTool(t)
	for _, dir := range exampleDirs(t) {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command(gobin, "run", "./"+filepath.Join("examples", dir))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", dir, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", dir)
			}
		})
	}
}
