package leodivide

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	ds, err := GenerateDataset(context.Background(), WithSeed(5), WithScale(0.03))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := ds.Save(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Seed != 5 || back.Resolution != ds.Resolution {
		t.Errorf("metadata drifted: %+v", back)
	}
	if back.TotalLocations() != ds.TotalLocations() || back.NumCells() != ds.NumCells() {
		t.Errorf("dataset shape drifted: %d/%d vs %d/%d",
			back.TotalLocations(), back.NumCells(), ds.TotalLocations(), ds.NumCells())
	}
	for i := range ds.Cells {
		if ds.Cells[i].ID != back.Cells[i].ID || ds.Cells[i].Locations != back.Cells[i].Locations {
			t.Fatalf("cell %d drifted", i)
		}
	}
	// The loaded dataset produces identical analysis results.
	m := NewModel()
	a, err := m.Finding1(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Finding1(context.Background(), back)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("Finding1 drifted: %+v vs %+v", a, b)
	}
	fa, err := m.Fig4(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := m.Fig4(context.Background(), back)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fa.Results {
		if math.Abs(fa.Results[i].UnaffordableLocations-fb.Results[i].UnaffordableLocations) > 0.5 {
			t.Errorf("Fig4 drifted for %s", fa.Results[i].Plan.Name)
		}
	}
}

func TestLoadDatasetErrors(t *testing.T) {
	if _, err := LoadDataset(t.TempDir()); err == nil {
		t.Error("empty dir should fail")
	}
	// Corrupt metadata.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, datasetMetaFile), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDataset(dir); err == nil {
		t.Error("corrupt metadata should fail")
	}
	// Metadata/file mismatch.
	ds, err := GenerateDataset(context.Background(), WithSeed(6), WithScale(0.02))
	if err != nil {
		t.Fatal(err)
	}
	dir2 := t.TempDir()
	if err := ds.Save(dir2); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir2, datasetMetaFile),
		[]byte(`{"seed":6,"resolution":5,"locations":1,"cells":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDataset(dir2); err == nil {
		t.Error("cell-count mismatch should fail")
	}
}
