package leodivide

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"leodivide/internal/safeio"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	ctx := context.Background()
	ds, err := GenerateDataset(context.Background(), WithSeed(5), WithScale(0.03))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := ds.Save(ctx, dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDataset(ctx, dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Seed != 5 || back.Resolution != ds.Resolution {
		t.Errorf("metadata drifted: %+v", back)
	}
	if back.TotalLocations() != ds.TotalLocations() || back.NumCells() != ds.NumCells() {
		t.Errorf("dataset shape drifted: %d/%d vs %d/%d",
			back.TotalLocations(), back.NumCells(), ds.TotalLocations(), ds.NumCells())
	}
	for i := range ds.Cells {
		if ds.Cells[i].ID != back.Cells[i].ID || ds.Cells[i].Locations != back.Cells[i].Locations {
			t.Fatalf("cell %d drifted", i)
		}
	}
	// The loaded dataset produces identical analysis results.
	m := NewModel()
	a, err := m.Finding1(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Finding1(context.Background(), back)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("Finding1 drifted: %+v vs %+v", a, b)
	}
	fa, err := m.Fig4(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := m.Fig4(context.Background(), back)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fa.Results {
		if math.Abs(fa.Results[i].UnaffordableLocations-fb.Results[i].UnaffordableLocations) > 0.5 {
			t.Errorf("Fig4 drifted for %s", fa.Results[i].Plan.Name)
		}
	}
}

func TestLoadDatasetErrors(t *testing.T) {
	ctx := context.Background()
	if _, err := LoadDataset(ctx, t.TempDir()); err == nil {
		t.Error("empty dir should fail")
	}
	// Corrupt metadata.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, datasetMetaFile), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDataset(ctx, dir); err == nil {
		t.Error("corrupt metadata should fail")
	}
	// Metadata/file mismatch.
	ds, err := GenerateDataset(context.Background(), WithSeed(6), WithScale(0.02))
	if err != nil {
		t.Fatal(err)
	}
	dir2 := t.TempDir()
	if err := ds.Save(ctx, dir2); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir2, datasetMetaFile),
		[]byte(`{"seed":6,"resolution":5,"locations":1,"cells":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDataset(ctx, dir2); err == nil {
		t.Error("cell-count mismatch should fail")
	}
}

// smallDataset generates a cheap dataset for persistence tests.
func smallDataset(t *testing.T, seed int64) *Dataset {
	t.Helper()
	ds, err := GenerateDataset(context.Background(), WithSeed(seed), WithScale(0.02))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestSaveReportsWriteFailures is the regression suite for the
// historical bug where Save's deferred Close discarded errors: a write
// failure after a successful WriteCSV went unreported, leaving a
// truncated cells.csv behind a nil error. Every artifact and every
// failure mode (mid-write error, short write, failed flush, failed
// close) must now surface at Save, and the destination directory must
// not gain a manifest that would let LoadDataset succeed.
func TestSaveReportsWriteFailures(t *testing.T) {
	ctx := context.Background()
	ds := smallDataset(t, 7)
	boom := errors.New("device error")
	artifacts := []string{datasetCellsFile, datasetIncomesFile, datasetMetaFile}
	for _, artifact := range artifacts {
		// The write hook sees the destination path; the sync/close hooks
		// see the temp file (named after the destination plus a random
		// suffix), so those match on prefix.
		onArtifact := func(path string, f func()) {
			if strings.HasPrefix(filepath.Base(path), artifact) {
				f()
			}
		}
		modes := []struct {
			name    string
			install func() func()
			wantErr error
		}{
			{
				name: "write error",
				install: func() func() {
					return safeio.SetWriteFault(func(path string, w io.Writer) io.Writer {
						if filepath.Base(path) == artifact {
							return &safeio.FaultWriter{W: w, FailAfter: 16, Err: boom}
						}
						return w
					})
				},
				wantErr: boom,
			},
			{
				name: "short write",
				install: func() func() {
					return safeio.SetWriteFault(func(path string, w io.Writer) io.Writer {
						if filepath.Base(path) == artifact {
							return &safeio.FaultWriter{W: w, FailAfter: 16, Short: true}
						}
						return w
					})
				},
				wantErr: io.ErrShortWrite,
			},
			{
				name: "sync failure",
				install: func() func() {
					return safeio.SetSyncFault(func(path string) error {
						var err error
						onArtifact(path, func() { err = boom })
						return err
					})
				},
				wantErr: boom,
			},
			{
				name: "close failure",
				install: func() func() {
					return safeio.SetCloseFault(func(path string) error {
						var err error
						onArtifact(path, func() { err = boom })
						return err
					})
				},
				wantErr: boom,
			},
		}
		for _, mode := range modes {
			t.Run(artifact+"/"+mode.name, func(t *testing.T) {
				restore := mode.install()
				defer restore()
				dir := t.TempDir()
				err := ds.Save(ctx, dir)
				if err == nil {
					t.Fatal("Save swallowed the injected failure")
				}
				if !errors.Is(err, mode.wantErr) {
					t.Errorf("Save error = %v, want %v", err, mode.wantErr)
				}
				restore()
				if _, err := LoadDataset(ctx, dir); err == nil {
					t.Error("failed Save left a loadable dataset behind")
				}
			})
		}
	}
}

func TestLoadDatasetCorruption(t *testing.T) {
	ctx := context.Background()
	ds := smallDataset(t, 9)
	save := func(t *testing.T) string {
		dir := t.TempDir()
		if err := ds.Save(ctx, dir); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	t.Run("single-byte flip in cells.csv", func(t *testing.T) {
		dir := save(t)
		path := filepath.Join(dir, datasetCellsFile)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x01
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = LoadDataset(ctx, dir)
		if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
			t.Errorf("flipped byte not caught by checksum: %v", err)
		}
	})

	t.Run("truncated cells.csv", func(t *testing.T) {
		dir := save(t)
		path := filepath.Join(dir, datasetCellsFile)
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, info.Size()/2); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadDataset(ctx, dir); err == nil {
			t.Error("truncated cells.csv loaded without error")
		}
	})

	t.Run("single-byte flip in incomes.csv", func(t *testing.T) {
		dir := save(t)
		path := filepath.Join(dir, datasetIncomesFile)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x01
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = LoadDataset(ctx, dir)
		if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
			t.Errorf("flipped byte not caught by checksum: %v", err)
		}
	})

	t.Run("metadata resolution disagrees with cells", func(t *testing.T) {
		dir := save(t)
		metaPath := filepath.Join(dir, datasetMetaFile)
		raw, err := os.ReadFile(metaPath)
		if err != nil {
			t.Fatal(err)
		}
		var meta map[string]interface{}
		if err := json.Unmarshal(raw, &meta); err != nil {
			t.Fatal(err)
		}
		meta["resolution"] = 4
		edited, err := json.Marshal(meta)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(metaPath, edited, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = LoadDataset(ctx, dir)
		if err == nil || !strings.Contains(err.Error(), "resolution") {
			t.Errorf("resolution disagreement not caught: %v", err)
		}
	})

	t.Run("manifest missing a checksum entry", func(t *testing.T) {
		dir := save(t)
		metaPath := filepath.Join(dir, datasetMetaFile)
		raw, err := os.ReadFile(metaPath)
		if err != nil {
			t.Fatal(err)
		}
		var meta map[string]interface{}
		if err := json.Unmarshal(raw, &meta); err != nil {
			t.Fatal(err)
		}
		meta["sha256"] = map[string]string{datasetIncomesFile: "0"}
		edited, err := json.Marshal(meta)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(metaPath, edited, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = LoadDataset(ctx, dir)
		if err == nil || !strings.Contains(err.Error(), "no checksum") {
			t.Errorf("missing manifest entry not caught: %v", err)
		}
	})

	t.Run("injected read error", func(t *testing.T) {
		dir := save(t)
		boom := errors.New("read failure")
		defer safeio.SetReadFault(func(path string, r io.Reader) io.Reader {
			if filepath.Base(path) == datasetCellsFile {
				return &safeio.FaultReader{R: r, FailAfter: 10, Err: boom}
			}
			return r
		})()
		if _, err := LoadDataset(ctx, dir); !errors.Is(err, boom) {
			t.Errorf("LoadDataset error = %v, want %v", err, boom)
		}
	})

	t.Run("injected short read", func(t *testing.T) {
		dir := save(t)
		defer safeio.SetReadFault(func(path string, r io.Reader) io.Reader {
			if filepath.Base(path) == datasetCellsFile {
				return &safeio.FaultReader{R: r, FailAfter: 10, Short: true}
			}
			return r
		})()
		if _, err := LoadDataset(ctx, dir); err == nil {
			t.Error("short read not caught")
		}
	})
}

// TestSaveByteIdentical: saving the same dataset twice must produce
// byte-identical files — the property that makes the manifest
// checksums meaningful across machines and sessions.
func TestSaveByteIdentical(t *testing.T) {
	ctx := context.Background()
	ds := smallDataset(t, 11)
	dirA, dirB := t.TempDir(), t.TempDir()
	if err := ds.Save(ctx, dirA); err != nil {
		t.Fatal(err)
	}
	if err := ds.Save(ctx, dirB); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{datasetMetaFile, datasetCellsFile, datasetIncomesFile} {
		a, err := os.ReadFile(filepath.Join(dirA, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%s differs between identical saves", name)
		}
	}
	// And the manifest records the sums the files actually have.
	raw, err := os.ReadFile(filepath.Join(dirA, datasetMetaFile))
	if err != nil {
		t.Fatal(err)
	}
	var meta struct {
		FormatVersion int               `json:"format_version"`
		Checksums     map[string]string `json:"sha256"`
	}
	if err := json.Unmarshal(raw, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.FormatVersion != datasetFormatVersion {
		t.Errorf("format_version = %d, want %d", meta.FormatVersion, datasetFormatVersion)
	}
	for _, name := range []string{datasetCellsFile, datasetIncomesFile} {
		data, err := os.ReadFile(filepath.Join(dirA, name))
		if err != nil {
			t.Fatal(err)
		}
		if got := safeio.SHA256Hex(data); got != meta.Checksums[name] {
			t.Errorf("manifest sum for %s is stale", name)
		}
	}
}

// TestLoadDatasetLegacyFormat: a version-1 directory (no checksums in
// the manifest) still loads, with structural validation only.
func TestLoadDatasetLegacyFormat(t *testing.T) {
	ctx := context.Background()
	ds := smallDataset(t, 13)
	dir := t.TempDir()
	if err := ds.Save(ctx, dir); err != nil {
		t.Fatal(err)
	}
	legacy, err := json.Marshal(map[string]interface{}{
		"seed":       ds.Seed,
		"resolution": int(ds.Resolution),
		"locations":  ds.TotalLocations(),
		"cells":      len(ds.Cells),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, datasetMetaFile), legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDataset(ctx, dir)
	if err != nil {
		t.Fatalf("legacy manifest rejected: %v", err)
	}
	if back.TotalLocations() != ds.TotalLocations() {
		t.Error("legacy load drifted")
	}
}
