package leodivide

import (
	"context"
	"testing"
)

func crossConstDataset(t *testing.T) *Dataset {
	t.Helper()
	cfg := DefaultRunConfig()
	cfg.Scale = 0.02
	ds, err := cfg.Generate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestCostCurveInvariants checks the structural contract of the
// costcurve experiment: one curve per declared system in canonical
// order, a full fraction sweep per curve, and the monotonicity a
// growing fleet implies — required spread never rises, served fraction
// never falls.
func TestCostCurveInvariants(t *testing.T) {
	ds := crossConstDataset(t)
	r, err := NewModel().CostCurve(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	wantSystems := []string{"starlink", "starlink-gen2", "kuiper", "oneweb"}
	if len(r.Systems) != len(wantSystems) {
		t.Fatalf("%d curves, want %d", len(r.Systems), len(wantSystems))
	}
	for i, sys := range r.Systems {
		if sys.System != wantSystems[i] {
			t.Errorf("curve %d is %q, want %q", i, sys.System, wantSystems[i])
		}
		if sys.AuthorizedSatellites <= 0 || sys.EquivalentFullFleet <= 0 {
			t.Errorf("%s: degenerate fleet sizes %+v", sys.System, sys)
		}
		if len(sys.Points) != 10 {
			t.Fatalf("%s: %d points, want the 10%%..100%% sweep", sys.System, len(sys.Points))
		}
		for j, p := range sys.Points {
			if p.Satellites < 1 || p.RequiredSpread < 1 {
				t.Errorf("%s point %d: degenerate %+v", sys.System, j, p)
			}
			if p.ServedLocations > 0 && p.MonthlyPerLocationUSD <= 0 {
				t.Errorf("%s point %d: served %d locations at $%v/month",
					sys.System, j, p.ServedLocations, p.MonthlyPerLocationUSD)
			}
			if j == 0 {
				continue
			}
			prev := sys.Points[j-1]
			if p.FleetFraction <= prev.FleetFraction {
				t.Errorf("%s: fractions not ascending at point %d", sys.System, j)
			}
			if p.RequiredSpread > prev.RequiredSpread {
				t.Errorf("%s: required spread rose with fleet size (%v -> %v)",
					sys.System, prev.RequiredSpread, p.RequiredSpread)
			}
			if p.ServedFraction < prev.ServedFraction {
				t.Errorf("%s: served fraction fell with fleet size (%v -> %v)",
					sys.System, prev.ServedFraction, p.ServedFraction)
			}
		}
	}
	// OneWeb's stacking limit is a single beam, so its two per-cell caps
	// coincide and it must report no diminishing-returns tail; Starlink
	// stacks four beams and must have one.
	for _, sys := range r.Systems {
		switch sys.System {
		case "oneweb":
			if sys.Tail.LocationsGained != 0 {
				t.Errorf("oneweb reports a tail %+v but its caps coincide", sys.Tail)
			}
		case "starlink":
			if sys.Tail.LocationsGained <= 0 || sys.Tail.MonthlyPerLocationUSD <= 0 {
				t.Errorf("starlink tail %+v should price a real gain", sys.Tail)
			}
		}
	}
}

// TestCrossConstellationInvariants checks the xconst table: one row per
// system in canonical order, and a Cheapest verdict that actually is
// the minimum monthly cost among serving systems.
func TestCrossConstellationInvariants(t *testing.T) {
	ds := crossConstDataset(t)
	r, err := NewModel().CrossConstellation(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	wantSystems := []string{"starlink", "starlink-gen2", "kuiper", "oneweb"}
	if len(r.Rows) != len(wantSystems) {
		t.Fatalf("%d rows, want %d", len(r.Rows), len(wantSystems))
	}
	best := ""
	for i, row := range r.Rows {
		if row.System != wantSystems[i] {
			t.Errorf("row %d is %q, want %q", i, row.System, wantSystems[i])
		}
		if row.RequiredSatellites < 1 || row.FleetCapexUSD <= 0 {
			t.Errorf("%s: degenerate requirement %+v", row.System, row)
		}
		if row.ServedFraction <= 0 || row.ServedFraction > 1 {
			t.Errorf("%s: served fraction %v outside (0,1]", row.System, row.ServedFraction)
		}
		if row.ServedLocations > 0 &&
			(best == "" || row.MonthlyPerLocationUSD < minMonthly(r.Rows, best)) {
			best = row.System
		}
	}
	if r.Cheapest == "" || r.Cheapest != best {
		t.Errorf("Cheapest = %q, want %q", r.Cheapest, best)
	}
}

func minMonthly(rows []ConstellationRow, system string) float64 {
	for _, r := range rows {
		if r.System == system {
			return r.MonthlyPerLocationUSD
		}
	}
	return 0
}
