package leodivide

// ScenarioRequest is the single scenario wire contract: the JSON body
// of `POST /v1/scenario` and the value of the CLI's `-scenario <json>`
// flag are this exact shape, so a query saved from one entry point
// replays byte-for-byte through the other. internal/serve aliases it
// as its Request type; the CLI parses it with ParseScenarioRequest and
// merges it onto flag-derived defaults with Apply.

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// ScenarioRequest is the wire form of a scenario query. Dataset
// identity fields (seed, scale, calibrated) are pointers: absent means
// "inherit" (the server's dataset, or the CLI flags); the server
// answers against one immutable dataset, so present-but-different is a
// 409 there. Parallelism is not a wire knob at all — results are
// identical at every worker count. The constellation selector and the
// cost overrides are schema-v2 fields and the region selector is
// schema-v3; a request declaring an older schema must not set fields
// it predates.
type ScenarioRequest struct {
	Schema           string    `json:"schema"`
	Experiment       string    `json:"experiment"`
	Seed             *int64    `json:"seed,omitempty"`
	Scale            *float64  `json:"scale,omitempty"`
	Calibrated       *bool     `json:"calibrated,omitempty"`
	MaxOversub       float64   `json:"max_oversub,omitempty"`
	AffordShare      float64   `json:"afford_share,omitempty"`
	Spreads          []float64 `json:"spreads,omitempty"`
	Plans            []string  `json:"plans,omitempty"`
	Constellation    string    `json:"constellation,omitempty"`
	CostSatelliteUSD float64   `json:"cost_sat_usd,omitempty"`
	CostLifeYears    float64   `json:"cost_life_years,omitempty"`
	CostTerminalUSD  float64   `json:"cost_terminal_usd,omitempty"`
	Region           string    `json:"region,omitempty"`
}

// ParseScenarioRequest decodes the wire form strictly: unknown fields
// and trailing data are errors, and the schema declaration must be
// coherent (see ValidateSchema).
func ParseScenarioRequest(data []byte) (ScenarioRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r ScenarioRequest
	if err := dec.Decode(&r); err != nil {
		return ScenarioRequest{}, fmt.Errorf("leodivide: scenario request: %w", err)
	}
	if dec.More() {
		return ScenarioRequest{}, fmt.Errorf("leodivide: scenario request: trailing data after JSON object")
	}
	if err := r.ValidateSchema(); err != nil {
		return ScenarioRequest{}, err
	}
	return r, nil
}

// ValidateSchema checks the request's schema declaration: empty (a CLI
// convenience meaning the current schema) and the current schema are
// accepted as-is; the v1 and v2 schemas are accepted for compatibility
// but may not use the fields they predate.
func (r ScenarioRequest) ValidateSchema() error {
	switch r.Schema {
	case "", ScenarioSchema:
		return nil
	case ScenarioSchemaV2:
		if r.Region != "" {
			return fmt.Errorf("leodivide: scenario request declares schema %q but uses the v3-only region field; declare schema %q",
				ScenarioSchemaV2, ScenarioSchema)
		}
		return nil
	case ScenarioSchemaV1:
		if r.Constellation != "" || r.CostSatelliteUSD != 0 || r.CostLifeYears != 0 || r.CostTerminalUSD != 0 {
			return fmt.Errorf("leodivide: scenario request declares schema %q but uses v2-only fields (constellation or cost overrides); declare schema %q",
				ScenarioSchemaV1, ScenarioSchema)
		}
		if r.Region != "" {
			return fmt.Errorf("leodivide: scenario request declares schema %q but uses the v3-only region field; declare schema %q",
				ScenarioSchemaV1, ScenarioSchema)
		}
		return nil
	default:
		return fmt.Errorf("leodivide: unsupported schema %q (want %q)", r.Schema, ScenarioSchema)
	}
}

// Apply merges the request onto a base scenario: pointer fields
// override the base's dataset identity when present, a named
// experiment replaces the base's, and the value knobs replace the
// base's knobs wholesale (zero = "the default", exactly as in a
// ScenarioConfig). The merge is validated except for experiment
// presence — run/bench/serve each decide later whether a scenario
// without an experiment is acceptable.
func (r ScenarioRequest) Apply(base ScenarioConfig) (ScenarioConfig, error) {
	if err := r.ValidateSchema(); err != nil {
		return ScenarioConfig{}, err
	}
	c := base
	if r.Experiment != "" {
		c.Experiment = r.Experiment
	}
	if r.Seed != nil {
		c.Seed = *r.Seed
	}
	if r.Scale != nil {
		c.Scale = *r.Scale
	}
	if r.Calibrated != nil {
		c.Calibrated = *r.Calibrated
	}
	c.MaxOversub = r.MaxOversub
	c.AffordShare = r.AffordShare
	c.Spreads = r.Spreads
	c.Plans = r.Plans
	c.Constellation = r.Constellation
	c.CostSatelliteUSD = r.CostSatelliteUSD
	c.CostLifeYears = r.CostLifeYears
	c.CostTerminalUSD = r.CostTerminalUSD
	c.Region = r.Region
	if c.Experiment != "" {
		if err := c.Validate(); err != nil {
			return ScenarioConfig{}, err
		}
		return c, nil
	}
	if err := c.validateBase(); err != nil {
		return ScenarioConfig{}, err
	}
	return c, nil
}

// Request renders the scenario in wire form under the current schema,
// with the dataset identity spelled out. ParseScenarioRequest +
// Apply on the JSON of this value round-trips to a config with the
// same canonical key.
func (c ScenarioConfig) Request() ScenarioRequest {
	seed, scale, calibrated := c.Seed, c.Scale, c.Calibrated
	return ScenarioRequest{
		Schema:           ScenarioSchema,
		Experiment:       c.Experiment,
		Seed:             &seed,
		Scale:            &scale,
		Calibrated:       &calibrated,
		MaxOversub:       c.MaxOversub,
		AffordShare:      c.AffordShare,
		Spreads:          c.Spreads,
		Plans:            c.Plans,
		Constellation:    c.Constellation,
		CostSatelliteUSD: c.CostSatelliteUSD,
		CostLifeYears:    c.CostLifeYears,
		CostTerminalUSD:  c.CostTerminalUSD,
		Region:           c.Region,
	}
}
