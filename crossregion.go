package leodivide

// Cross-region analysis: the paper's headline claim — LEO serves
// anyone anywhere, not everyone everywhere — asked of every declared
// demand geography instead of the US map alone. The xregion registry
// experiment regenerates each region at the active dataset's (seed,
// scale) identity and reports, per region, the service fraction the
// active system's per-cell cap admits, the fleet the capped sizing
// rule demands, and the affordability of the reference plan — then
// names which constraint binds.
//
// The interesting physics is the latitude-density machinery: an
// inclined fleet's satellite density peaks near its inclination and
// thins toward the equator, so a sparse equatorial geography
// (brazil-rural) pays a satellite-count premium per covered cell while
// its low incomes make affordability the binding constraint; a compact
// mid-latitude urban geography (taipei-dense) sits in a denser part of
// the shell but stacks so much demand per cell that the per-cell beam
// cap binds long before anyone's budget does.

import (
	"context"
	"math"

	"leodivide/internal/afford"
	"leodivide/internal/core"
	"leodivide/internal/region"
)

// regionKeys returns the declared region keys in canonical order.
func regionKeys() []string { return region.Names() }

// regionDisplayName resolves a region key's display name (the key
// itself for unknown keys, keeping row construction total).
func regionDisplayName(key string) string {
	if r, ok := region.ByName(key); ok {
		return r.Name()
	}
	return key
}

// RegionRow is one geography's line of the xregion table.
type RegionRow struct {
	// Region is the canonical key; DisplayName the human-readable name.
	Region      string
	DisplayName string
	// TotalLocations and NumCells describe the generated demand map at
	// the run's scale.
	TotalLocations int
	NumCells       int
	// BindingLatDeg is the latitude of the binding demand cell — where
	// the constellation's latitude-dependent density must meet the
	// region's worst-case demand.
	BindingLatDeg float64
	// RequiredSatellites is the raw fleet the capped sizing rule
	// demands at spread 1 (scaling the active system's authorized
	// composition), and RequiredSpread the beamspread the authorized
	// fleet would need instead.
	RequiredSatellites int
	RequiredSpread     float64
	// ServedLocations and ServedFraction count the locations within the
	// system's hard per-cell cap at the oversubscription limit — the
	// capacity ceiling no fleet size lifts.
	ServedLocations int
	ServedFraction  float64
	// AffordableFraction is the share of locations that can afford the
	// reference plan (Starlink Residential, unsubsidized) at the
	// model's income share; UnaffordableFraction is its complement.
	AffordableFraction   float64
	UnaffordableFraction float64
	// BindingConstraint names the tighter of the two ceilings:
	// "capacity" when the served fraction is below the affordable
	// fraction, "affordability" otherwise.
	BindingConstraint string
}

// CrossRegionResult is the xregion experiment output.
type CrossRegionResult struct {
	// System is the active constellation the comparison runs under.
	System      string
	MaxOversub  float64
	AffordShare float64
	// Rows hold one line per declared region, in canonical order.
	Rows []RegionRow
}

// CrossRegion builds the xregion table: every declared region
// regenerated at the active dataset's (seed, scale) identity and
// analyzed under the active system. The dataset passed in is reused
// for its own region, so the default serve/CLI path generates only the
// two sibling geographies. Regions are generated serially in canonical
// order — generation fans out internally, and a serial outer loop
// keeps the stage-memo warm-up order deterministic.
func (m Model) CrossRegion(ctx context.Context, d *Dataset) (CrossRegionResult, error) {
	out := CrossRegionResult{
		System:      m.System.Key,
		MaxOversub:  m.MaxOversub,
		AffordShare: m.AffordShare,
	}
	for _, key := range regionKeys() {
		rd, err := m.regionDataset(ctx, d, key)
		if err != nil {
			return CrossRegionResult{}, err
		}
		row, err := m.regionRow(rd)
		if err != nil {
			return CrossRegionResult{}, err
		}
		out.Rows = append(out.Rows, row)
		if err := ctx.Err(); err != nil {
			return CrossRegionResult{}, err
		}
	}
	return out, nil
}

// regionDataset resolves the dataset for one region: the active
// dataset when it already is that geography, a fresh generation at the
// same (seed, scale) otherwise. Datasets predating the region field
// (zero Region/Scale) count as the default region at full scale.
func (m Model) regionDataset(ctx context.Context, d *Dataset, key string) (*Dataset, error) {
	dsRegion, dsScale := d.Region, d.Scale
	if dsRegion == "" {
		dsRegion = "us"
	}
	if dsScale == 0 {
		dsScale = 1
	}
	if dsRegion == key {
		return d, nil
	}
	return GenerateDataset(ctx,
		WithSeed(d.Seed),
		WithScale(dsScale),
		WithRegion(key),
		WithParallelism(m.Workers),
	)
}

// regionRow analyzes one generated geography under the active system.
func (m Model) regionRow(d *Dataset) (RegionRow, error) {
	dist := d.Distribution()
	c := m.Capacity
	sizing := c.Size(dist, core.CappedOversub, 1, m.MaxOversub)
	lat := sizing.BindingCell.Center.Lat
	equivFull := m.System.EquivalentSingleShellSatellites(m.System.SizingShell(), lat)
	if equivFull < 1 {
		equivFull = 1
	}
	total := m.System.TotalSatellites()
	inv := c.InverseSize(dist, equivFull, m.MaxOversub)

	hardCap := c.Beams.MaxServableLocations(m.MaxOversub)
	totalLocs := dist.TotalLocations()
	served := totalLocs - dist.ExcessAbove(hardCap)
	servedFraction := float64(served) / float64(totalLocs)

	in, err := d.affordInput()
	if err != nil {
		return RegionRow{}, err
	}
	res := in.Evaluate(afford.StarlinkResidential(), nil, m.AffordShare)
	affordable := 1 - res.UnaffordableFraction

	binding := "affordability"
	if servedFraction < affordable {
		binding = "capacity"
	}
	key := d.Region
	if key == "" {
		key = region.DefaultKey
	}
	return RegionRow{
		Region:               key,
		DisplayName:          regionDisplayName(key),
		TotalLocations:       totalLocs,
		NumCells:             dist.NumCells(),
		BindingLatDeg:        lat,
		RequiredSatellites:   int(math.Ceil(float64(sizing.Satellites) * float64(total) / float64(equivFull))),
		RequiredSpread:       inv.RequiredSpread,
		ServedLocations:      served,
		ServedFraction:       servedFraction,
		AffordableFraction:   affordable,
		UnaffordableFraction: res.UnaffordableFraction,
		BindingConstraint:    binding,
	}, nil
}
