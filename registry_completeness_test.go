package leodivide

import (
	"context"
	"reflect"
	"testing"
)

// registryMethodNames maps every exported Model method with the uniform
// experiment signature func(context.Context, *Dataset) (T, error) to its
// registry name. A new uniform-signature method must either be added
// here (and to Experiments) or to registryExemptMethods with a reason —
// TestRegistryCompleteness enforces the invariant.
var registryMethodNames = map[string]string{
	"Fig1":               "fig1",
	"Table1":             "table1",
	"Table2":             "table2",
	"Fig2":               "fig2",
	"Fig4":               "fig4",
	"RunFindings":        "findings",
	"AssessFleets":       "fleets",
	"BusyHour":           "busyhour",
	"Economics":          "econ",
	"CostCurve":          "costcurve",
	"CrossConstellation": "xconst",
	"CrossRegion":        "xregion",
}

// registryExemptMethods lists uniform-signature methods deliberately
// absent from the registry, with the reason.
var registryExemptMethods = map[string]string{
	"Finding1": "reported inside the findings experiment, not standalone",
}

// registryExtraNames lists registry entries whose underlying methods do
// NOT have the uniform signature (they take extra parameters and are
// wrapped with defaults by Experiments).
var registryExtraNames = map[string]bool{
	"fig3":    true, // Fig3(ctx, d, spreads ...float64)
	"refined": true, // Fig4Refined(ctx, d, sigmaLog, householdSize)
}

// uniformExperimentMethods returns the names of exported Model methods
// with the exact signature func(context.Context, *Dataset) (T, error).
func uniformExperimentMethods(t *testing.T) []string {
	t.Helper()
	var (
		ctxType = reflect.TypeOf((*context.Context)(nil)).Elem()
		dsType  = reflect.TypeOf((*Dataset)(nil))
		errType = reflect.TypeOf((*error)(nil)).Elem()
		mt      = reflect.TypeOf(Model{})
	)
	var names []string
	for i := 0; i < mt.NumMethod(); i++ {
		m := mt.Method(i)
		ft := m.Type // receiver is In(0)
		if ft.IsVariadic() || ft.NumIn() != 3 || ft.NumOut() != 2 {
			continue
		}
		if ft.In(1) != ctxType || ft.In(2) != dsType {
			continue
		}
		if ft.Out(1) != errType {
			continue
		}
		names = append(names, m.Name)
	}
	return names
}

// TestRegistryCompleteness: every uniform-signature Model method is in
// the registry exactly once (or explicitly exempted), and the registry
// contains nothing else beyond the known wrapped extras.
func TestRegistryCompleteness(t *testing.T) {
	methods := uniformExperimentMethods(t)
	if len(methods) == 0 {
		t.Fatal("reflection found no uniform-signature methods; the probe is broken")
	}

	registry := map[string]int{}
	for _, exp := range NewModel().Experiments() {
		registry[exp.Name]++
	}
	for name, n := range registry {
		if n > 1 {
			t.Errorf("experiment %q appears %d times in the registry", name, n)
		}
	}

	covered := map[string]bool{}
	for _, method := range methods {
		regName, mapped := registryMethodNames[method]
		_, exempt := registryExemptMethods[method]
		switch {
		case mapped && exempt:
			t.Errorf("method %s is both mapped and exempt — pick one", method)
		case mapped:
			if registry[regName] == 0 {
				t.Errorf("method %s maps to %q but the registry has no such entry", method, regName)
			}
			covered[regName] = true
		case exempt:
			// fine, documented omission
		default:
			t.Errorf("uniform-signature method %s is neither in registryMethodNames nor registryExemptMethods; register it in Experiments or exempt it with a reason", method)
		}
	}
	for method, regName := range registryMethodNames {
		found := false
		for _, m := range methods {
			if m == method {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("registryMethodNames lists %s -> %q but no such uniform-signature method exists", method, regName)
		}
	}

	// Whatever remains in the registry must be a known wrapped extra.
	for name := range registry {
		if !covered[name] && !registryExtraNames[name] {
			t.Errorf("registry entry %q corresponds to no uniform-signature method and is not listed in registryExtraNames", name)
		}
	}
	for name := range registryExtraNames {
		if registry[name] == 0 {
			t.Errorf("registryExtraNames lists %q but the registry has no such entry", name)
		}
	}
}
